#include "tensor/autograd.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "base/logging.hh"
#include "tensor/arena.hh"

namespace ccsa
{
namespace ag
{

namespace
{

/**
 * Output buffer for an op's forward value, zero-filled in both modes.
 * Outside a scope this is a plain owned tensor (exactly what the
 * taped path always allocated); inside an InferenceScope it is a
 * borrowed span bump-allocated from the thread's arena, so the op
 * performs no heap allocation at all. Every op computes through the
 * same code into this buffer, which is what makes inference results
 * bitwise-identical to the taped forward.
 */
Tensor
outTensor(int rows, int cols)
{
    if (InferenceScope::active()) {
        const std::size_t n =
            static_cast<std::size_t>(rows) * cols;
        float* p = InferenceScope::arena().allocate(n);
        std::fill(p, p + n, 0.0f);
        return Tensor::borrowed(p, rows, cols);
    }
    return Tensor(rows, cols);
}

/** Shorthand for the per-op mode test. */
inline bool
inferenceMode()
{
    return InferenceScope::active();
}

} // namespace

Var::Var(Tensor v, bool requires_grad)
{
    node_ = std::make_shared<VarNode>();
    node_->value = std::move(v);
    node_->requiresGrad = requires_grad;
}

Var
Var::noGrad(Tensor v)
{
    Var out;
    out.rawValue_ = std::move(v);
    out.raw_ = true;
    return out;
}

const Tensor&
Var::value() const
{
    if (node_)
        return node_->value;
    if (raw_)
        return rawValue_;
    panic("Var::value: undefined Var");
}

Tensor&
Var::grad()
{
    if (raw_)
        panic("Var::grad: no tape node (inference-mode Var)");
    if (!node_)
        panic("Var::grad: undefined Var");
    node_->ensureGrad();
    return node_->grad;
}

void
Var::zeroGrad()
{
    if (raw_)
        panic("Var::zeroGrad: no tape node (inference-mode Var)");
    if (!node_)
        panic("Var::zeroGrad: undefined Var");
    if (!node_->grad.empty())
        node_->grad.fill(0.0f);
}

Tensor&
Var::mutableValue()
{
    if (raw_)
        panic("Var::mutableValue: no tape node (inference-mode Var)");
    if (!node_)
        panic("Var::mutableValue: undefined Var");
    return node_->value;
}

bool
Var::requiresGrad() const
{
    return node_ && node_->requiresGrad;
}

/** Internal helper: build an op node from value + parents + backward. */
Var
makeOp(Tensor value, std::vector<Var> parents,
       std::function<void(VarNode&)> backward)
{
    Var out(std::move(value), false);
    bool needs = false;
    for (const auto& p : parents) {
        if (!p.defined())
            panic("autograd op: undefined operand");
        if (!p.node())
            panic("autograd op: inference-mode operand on the taped "
                  "path (did a no-grad result escape its scope?)");
        out.node_->parents.push_back(p.node());
        needs = needs || p.node()->requiresGrad;
    }
    out.node_->requiresGrad = needs;
    if (needs)
        out.node_->backwardFn = std::move(backward);
    return out;
}

Var
constant(Tensor t)
{
    if (inferenceMode())
        return Var::noGrad(std::move(t));
    return Var(std::move(t), false);
}

Var
leaf(Tensor t)
{
    if (inferenceMode())
        fatal("ag::leaf: trainable parameters cannot be created "
              "inside an InferenceScope");
    return Var(std::move(t), true);
}

Var
zeros(int rows, int cols)
{
    if (inferenceMode())
        return Var::noGrad(outTensor(rows, cols));
    return Var(Tensor::zeros(rows, cols), false);
}

Var
matmul(const Var& a, const Var& b)
{
    Tensor v = outTensor(a.value().rows(), b.value().cols());
    // matmulInto re-zeroes then accumulates: the value is computed by
    // the same kernel call as the taped path's Tensor::matmul.
    a.value().matmulInto(b.value(), v);
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto an = a.node();
    auto bn = b.node();
    return makeOp(std::move(v), {a, b}, [an, bn](VarNode& self) {
        // Accumulate straight into the gradient buffers: no
        // transpose materialisation, no product temporary, no
        // elementwise add pass.
        if (an->requiresGrad) {
            an->ensureGrad();
            self.grad.matmulTransBAccumInto(bn->value, an->grad);
        }
        if (bn->requiresGrad) {
            bn->ensureGrad();
            an->value.matmulTransAAccumInto(self.grad, bn->grad);
        }
    });
}

Var
affinePair(const Var& x, const Var& w, const Var& h, const Var& u,
           const Var& bias)
{
    const Tensor& xv = x.value();
    const Tensor& wv = w.value();
    const Tensor& hv = h.value();
    const Tensor& uv = u.value();
    const Tensor& bv = bias.value();
    if (xv.rows() != hv.rows())
        panic("affinePair: x rows ", xv.rows(), " vs h rows ",
              hv.rows());
    if (wv.cols() != uv.cols() || bv.rows() != 1 ||
        bv.cols() != wv.cols())
        panic("affinePair: output column mismatch");

    Tensor v = outTensor(xv.rows(), wv.cols());
    xv.matmulInto(wv, v);
    Tensor tmp = outTensor(hv.rows(), uv.cols());
    hv.matmulInto(uv, tmp);
    v += tmp; // elementwise: same order as add(matmul, matmul)
    for (int i = 0; i < v.rows(); ++i)
        for (int j = 0; j < v.cols(); ++j)
            v.at(i, j) += bv.at(0, j);
    if (inferenceMode())
        return Var::noGrad(std::move(v));

    auto xn = x.node();
    auto wn = w.node();
    auto hn = h.node();
    auto un = u.node();
    auto bn = bias.node();
    return makeOp(std::move(v), {x, w, h, u, bias},
                  [xn, wn, hn, un, bn](VarNode& self) {
        if (xn->requiresGrad) {
            xn->ensureGrad();
            self.grad.matmulTransBAccumInto(wn->value, xn->grad);
        }
        if (wn->requiresGrad) {
            wn->ensureGrad();
            xn->value.matmulTransAAccumInto(self.grad, wn->grad);
        }
        if (hn->requiresGrad) {
            hn->ensureGrad();
            self.grad.matmulTransBAccumInto(un->value, hn->grad);
        }
        if (un->requiresGrad) {
            un->ensureGrad();
            hn->value.matmulTransAAccumInto(self.grad, un->grad);
        }
        if (bn->requiresGrad) {
            bn->ensureGrad();
            bn->grad += self.grad.sumRows();
        }
    });
}

namespace
{

/** dst = a (elementwise copy); the seed for accumulation-style ops. */
void
copyInto(const Tensor& src, Tensor& dst)
{
    std::copy(src.data(), src.data() + src.size(), dst.data());
}

} // namespace

Var
add(const Var& a, const Var& b)
{
    const Tensor& av = a.value();
    const Tensor& bv = b.value();
    if (!av.sameShape(bv))
        panic("Tensor::operator+: shape mismatch");
    Tensor v = outTensor(av.rows(), av.cols());
    const float* pa = av.data();
    const float* pb = bv.data();
    float* dst = v.data();
    for (std::size_t i = 0; i < av.size(); ++i)
        dst[i] = pa[i] + pb[i];
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto an = a.node();
    auto bn = b.node();
    return makeOp(std::move(v), {a, b}, [an, bn](VarNode& self) {
        if (an->requiresGrad) {
            an->ensureGrad();
            an->grad += self.grad;
        }
        if (bn->requiresGrad) {
            bn->ensureGrad();
            bn->grad += self.grad;
        }
    });
}

Var
sub(const Var& a, const Var& b)
{
    const Tensor& av = a.value();
    const Tensor& bv = b.value();
    if (!av.sameShape(bv))
        panic("Tensor::operator-: shape mismatch");
    Tensor v = outTensor(av.rows(), av.cols());
    const float* pa = av.data();
    const float* pb = bv.data();
    float* dst = v.data();
    for (std::size_t i = 0; i < av.size(); ++i)
        dst[i] = pa[i] - pb[i];
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto an = a.node();
    auto bn = b.node();
    return makeOp(std::move(v), {a, b}, [an, bn](VarNode& self) {
        if (an->requiresGrad) {
            an->ensureGrad();
            an->grad += self.grad;
        }
        if (bn->requiresGrad) {
            bn->ensureGrad();
            bn->grad -= self.grad;
        }
    });
}

Var
mul(const Var& a, const Var& b)
{
    const Tensor& av = a.value();
    const Tensor& bv = b.value();
    if (!av.sameShape(bv))
        panic("Tensor::operator*: shape mismatch");
    Tensor v = outTensor(av.rows(), av.cols());
    const float* pa = av.data();
    const float* pb = bv.data();
    float* dst = v.data();
    for (std::size_t i = 0; i < av.size(); ++i)
        dst[i] = pa[i] * pb[i];
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto an = a.node();
    auto bn = b.node();
    return makeOp(std::move(v), {a, b}, [an, bn](VarNode& self) {
        if (an->requiresGrad) {
            an->ensureGrad();
            an->grad += self.grad * bn->value;
        }
        if (bn->requiresGrad) {
            bn->ensureGrad();
            bn->grad += self.grad * an->value;
        }
    });
}

Var
scale(const Var& a, float s)
{
    const Tensor& av = a.value();
    Tensor v = outTensor(av.rows(), av.cols());
    const float* src = av.data();
    float* dst = v.data();
    for (std::size_t i = 0; i < av.size(); ++i)
        dst[i] = src[i] * s;
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto an = a.node();
    return makeOp(std::move(v), {a}, [an, s](VarNode& self) {
        if (an->requiresGrad) {
            an->ensureGrad();
            an->grad += self.grad * s;
        }
    });
}

Var
addN(const std::vector<Var>& xs)
{
    if (xs.empty())
        panic("addN: empty operand list");
    const Tensor& first = xs[0].value();
    Tensor v = outTensor(first.rows(), first.cols());
    copyInto(first, v);
    for (std::size_t i = 1; i < xs.size(); ++i)
        v += xs[i].value();
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    std::vector<VarNodePtr> nodes;
    for (const auto& x : xs)
        nodes.push_back(x.node());
    return makeOp(std::move(v), xs, [nodes](VarNode& self) {
        for (const auto& n : nodes) {
            if (n->requiresGrad) {
                n->ensureGrad();
                n->grad += self.grad;
            }
        }
    });
}

Var
sigmoid(const Var& a)
{
    const Tensor& av = a.value();
    Tensor v = outTensor(av.rows(), av.cols());
    const float* src = av.data();
    float* dst = v.data();
    for (std::size_t i = 0; i < av.size(); ++i)
        dst[i] = 1.0f / (1.0f + std::exp(-src[i]));
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto an = a.node();
    return makeOp(v, {a}, [an, v](VarNode& self) {
        if (!an->requiresGrad)
            return;
        an->ensureGrad();
        for (int i = 0; i < v.rows(); ++i)
            for (int j = 0; j < v.cols(); ++j) {
                float y = v.at(i, j);
                an->grad.at(i, j) += self.grad.at(i, j) * y * (1 - y);
            }
    });
}

Var
tanhOp(const Var& a)
{
    const Tensor& av = a.value();
    Tensor v = outTensor(av.rows(), av.cols());
    const float* src = av.data();
    float* dst = v.data();
    for (std::size_t i = 0; i < av.size(); ++i)
        dst[i] = std::tanh(src[i]);
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto an = a.node();
    return makeOp(v, {a}, [an, v](VarNode& self) {
        if (!an->requiresGrad)
            return;
        an->ensureGrad();
        for (int i = 0; i < v.rows(); ++i)
            for (int j = 0; j < v.cols(); ++j) {
                float y = v.at(i, j);
                an->grad.at(i, j) += self.grad.at(i, j) * (1 - y * y);
            }
    });
}

Var
relu(const Var& a)
{
    const Tensor& av = a.value();
    Tensor v = outTensor(av.rows(), av.cols());
    const float* src = av.data();
    float* dst = v.data();
    for (std::size_t i = 0; i < av.size(); ++i)
        dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto an = a.node();
    return makeOp(std::move(v), {a}, [an](VarNode& self) {
        if (!an->requiresGrad)
            return;
        an->ensureGrad();
        for (int i = 0; i < self.value.rows(); ++i)
            for (int j = 0; j < self.value.cols(); ++j)
                if (an->value.at(i, j) > 0.0f)
                    an->grad.at(i, j) += self.grad.at(i, j);
    });
}

Var
addRowBroadcast(const Var& a, const Var& bias)
{
    const Tensor& av = a.value();
    const Tensor& bv = bias.value();
    if (bv.rows() != 1 || bv.cols() != av.cols())
        panic("Tensor::addRowBroadcast: bias must be 1x", av.cols());
    Tensor v = outTensor(av.rows(), av.cols());
    for (int i = 0; i < av.rows(); ++i)
        for (int j = 0; j < av.cols(); ++j)
            v.at(i, j) = av.at(i, j) + bv.at(0, j);
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto an = a.node();
    auto bn = bias.node();
    return makeOp(std::move(v), {a, bias}, [an, bn](VarNode& self) {
        if (an->requiresGrad) {
            an->ensureGrad();
            an->grad += self.grad;
        }
        if (bn->requiresGrad) {
            bn->ensureGrad();
            bn->grad += self.grad.sumRows();
        }
    });
}

Var
concatColsOp(const Var& a, const Var& b)
{
    const Tensor& av = a.value();
    const Tensor& bv = b.value();
    if (av.rows() != bv.rows())
        panic("concatCols: row mismatch");
    Tensor v = outTensor(av.rows(), av.cols() + bv.cols());
    for (int i = 0; i < av.rows(); ++i) {
        for (int j = 0; j < av.cols(); ++j)
            v.at(i, j) = av.at(i, j);
        for (int j = 0; j < bv.cols(); ++j)
            v.at(i, av.cols() + j) = bv.at(i, j);
    }
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto an = a.node();
    auto bn = b.node();
    int ac = av.cols();
    return makeOp(std::move(v), {a, b}, [an, bn, ac](VarNode& self) {
        if (an->requiresGrad) {
            an->ensureGrad();
            for (int i = 0; i < an->value.rows(); ++i)
                for (int j = 0; j < ac; ++j)
                    an->grad.at(i, j) += self.grad.at(i, j);
        }
        if (bn->requiresGrad) {
            bn->ensureGrad();
            for (int i = 0; i < bn->value.rows(); ++i)
                for (int j = 0; j < bn->value.cols(); ++j)
                    bn->grad.at(i, j) += self.grad.at(i, ac + j);
        }
    });
}

Var
gatherRows(const Var& table, std::vector<int> indices)
{
    const Tensor& t = table.value();
    Tensor v = outTensor(static_cast<int>(indices.size()), t.cols());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        int r = indices[i];
        if (r < 0 || r >= t.rows())
            panic("gatherRows: index ", r, " out of range");
        for (int j = 0; j < t.cols(); ++j)
            v.at(static_cast<int>(i), j) = t.at(r, j);
    }
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto tn = table.node();
    return makeOp(std::move(v), {table},
                  [tn, idx = std::move(indices)](VarNode& self) {
        if (!tn->requiresGrad)
            return;
        tn->ensureGrad();
        for (std::size_t i = 0; i < idx.size(); ++i)
            for (int j = 0; j < tn->value.cols(); ++j)
                tn->grad.at(idx[i], j) +=
                    self.grad.at(static_cast<int>(i), j);
    });
}

Var
stackRows(const std::vector<Var>& xs)
{
    if (xs.empty())
        panic("stackRows: empty operand list");
    int cols = xs[0].value().cols();
    int total = 0;
    for (const auto& x : xs) {
        if (x.value().cols() != cols)
            panic("stackRows: column mismatch (", x.value().cols(),
                  " vs ", cols, ")");
        total += x.value().rows();
    }
    Tensor v = outTensor(total, cols);
    int r = 0;
    for (const auto& x : xs) {
        const Tensor& t = x.value();
        std::copy(t.data(), t.data() + t.size(),
                  v.data() + static_cast<std::size_t>(r) * cols);
        r += t.rows();
    }
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    std::vector<VarNodePtr> nodes;
    nodes.reserve(xs.size());
    for (const auto& x : xs)
        nodes.push_back(x.node());
    return makeOp(std::move(v), xs, [nodes](VarNode& self) {
        int cols = self.value.cols();
        int r = 0;
        for (const auto& n : nodes) {
            int rows = n->value.rows();
            if (n->requiresGrad) {
                n->ensureGrad();
                for (int i = 0; i < rows; ++i)
                    for (int j = 0; j < cols; ++j)
                        n->grad.at(i, j) += self.grad.at(r + i, j);
            }
            r += rows;
        }
    });
}

Var
scatterRows(const Var& x, std::vector<int> indices, int num_rows)
{
    const Tensor& t = x.value();
    if (static_cast<int>(indices.size()) != t.rows())
        panic("scatterRows: ", indices.size(), " indices for ",
              t.rows(), " rows");
    Tensor v = outTensor(num_rows, t.cols()); // zero-filled
    for (std::size_t i = 0; i < indices.size(); ++i) {
        int r = indices[i];
        if (r < 0 || r >= num_rows)
            panic("scatterRows: index ", r, " out of range");
        for (int j = 0; j < t.cols(); ++j)
            v.at(r, j) += t.at(static_cast<int>(i), j);
    }
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto xn = x.node();
    return makeOp(std::move(v), {x},
                  [xn, idx = std::move(indices)](VarNode& self) {
        if (!xn->requiresGrad)
            return;
        xn->ensureGrad();
        for (std::size_t i = 0; i < idx.size(); ++i)
            for (int j = 0; j < xn->value.cols(); ++j)
                xn->grad.at(static_cast<int>(i), j) +=
                    self.grad.at(idx[i], j);
    });
}

Var
rowSlice(const Var& x, int begin, int rows)
{
    const Tensor& t = x.value();
    if (begin < 0 || rows < 1 || begin + rows > t.rows())
        panic("rowSlice: [", begin, ", ", begin + rows,
              ") out of range for ", t.rows(), " rows");
    Tensor v = outTensor(rows, t.cols());
    std::copy(
        t.data() + static_cast<std::size_t>(begin) * t.cols(),
        t.data() + static_cast<std::size_t>(begin + rows) * t.cols(),
        v.data());
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto xn = x.node();
    return makeOp(std::move(v), {x}, [xn, begin, rows](VarNode& self) {
        if (!xn->requiresGrad)
            return;
        xn->ensureGrad();
        for (int i = 0; i < rows; ++i)
            for (int j = 0; j < xn->value.cols(); ++j)
                xn->grad.at(begin + i, j) += self.grad.at(i, j);
    });
}

Var
pickRows(const std::vector<Var>& sources,
         std::vector<std::pair<int, int>> picks)
{
    if (sources.empty())
        panic("pickRows: no sources");
    int cols = sources[0].value().cols();
    for (const auto& s : sources)
        if (s.value().cols() != cols)
            panic("pickRows: column mismatch");
    Tensor v = outTensor(static_cast<int>(picks.size()), cols);
    for (std::size_t i = 0; i < picks.size(); ++i) {
        auto [src, row] = picks[i];
        if (src < 0 || src >= static_cast<int>(sources.size()))
            panic("pickRows: source ", src, " out of range");
        const Tensor& t = sources[src].value();
        if (row < 0 || row >= t.rows())
            panic("pickRows: row ", row, " out of range for source ",
                  src);
        std::copy(t.data() + static_cast<std::size_t>(row) * cols,
                  t.data() + static_cast<std::size_t>(row + 1) * cols,
                  v.data() + i * static_cast<std::size_t>(cols));
    }
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    std::vector<VarNodePtr> nodes;
    nodes.reserve(sources.size());
    for (const auto& s : sources)
        nodes.push_back(s.node());
    return makeOp(std::move(v), sources,
                  [nodes, ps = std::move(picks)](VarNode& self) {
        for (std::size_t i = 0; i < ps.size(); ++i) {
            VarNode& src = *nodes[ps[i].first];
            if (!src.requiresGrad)
                continue;
            src.ensureGrad();
            int row = ps[i].second;
            for (int j = 0; j < src.value.cols(); ++j)
                src.grad.at(row, j) +=
                    self.grad.at(static_cast<int>(i), j);
        }
    });
}

namespace
{

/** Validate a segment-offset vector; @return the segment count. */
int
checkSegments(const std::vector<int>& offsets, int rows)
{
    if (offsets.size() < 2)
        panic("segmentSum: need at least one segment");
    if (offsets.front() != 0 || offsets.back() != rows)
        panic("segmentSum: offsets must span [0, ", rows, "]");
    for (std::size_t s = 1; s < offsets.size(); ++s)
        if (offsets[s] < offsets[s - 1])
            panic("segmentSum: offsets must be non-decreasing");
    return static_cast<int>(offsets.size()) - 1;
}

/**
 * Shared backward of both segmentSum forms: every row of segment s
 * receives the output gradient row s.
 */
void
segmentSumBackward(VarNode& x, const Tensor& out_grad,
                   const std::vector<int>& offsets)
{
    int segs = static_cast<int>(offsets.size()) - 1;
    for (int s = 0; s < segs; ++s)
        for (int r = offsets[s]; r < offsets[s + 1]; ++r)
            for (int j = 0; j < x.value.cols(); ++j)
                x.grad.at(r, j) += out_grad.at(s, j);
}

} // namespace

Var
segmentSum(const Var& x, std::vector<int> offsets)
{
    const Tensor& t = x.value();
    int segs = checkSegments(offsets, t.rows());
    Tensor v = outTensor(segs, t.cols()); // zero rows for empty segs
    for (int s = 0; s < segs; ++s) {
        if (offsets[s] == offsets[s + 1])
            continue; // empty segment -> zero row
        // Seed from the first row, then add in ascending order: the
        // exact accumulation order of addN over the same rows.
        for (int j = 0; j < t.cols(); ++j)
            v.at(s, j) = t.at(offsets[s], j);
        for (int r = offsets[s] + 1; r < offsets[s + 1]; ++r)
            for (int j = 0; j < t.cols(); ++j)
                v.at(s, j) += t.at(r, j);
    }
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto xn = x.node();
    return makeOp(std::move(v), {x},
                  [xn, off = std::move(offsets)](VarNode& self) {
        if (!xn->requiresGrad)
            return;
        xn->ensureGrad();
        segmentSumBackward(*xn, self.grad, off);
    });
}

Var
segmentSum(const Var& x, std::vector<int> offsets, const Var& init)
{
    const Tensor& t = x.value();
    int segs = checkSegments(offsets, t.rows());
    const Tensor& seed = init.value();
    if (seed.rows() != segs || seed.cols() != t.cols())
        panic("segmentSum: init must be ", segs, "x", t.cols());
    Tensor v = outTensor(segs, t.cols());
    copyInto(seed, v);
    for (int s = 0; s < segs; ++s)
        for (int r = offsets[s]; r < offsets[s + 1]; ++r)
            for (int j = 0; j < t.cols(); ++j)
                v.at(s, j) += t.at(r, j);
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto xn = x.node();
    auto in = init.node();
    return makeOp(std::move(v), {x, init},
                  [xn, in, off = std::move(offsets)](VarNode& self) {
        if (in->requiresGrad) {
            in->ensureGrad();
            in->grad += self.grad;
        }
        if (xn->requiresGrad) {
            xn->ensureGrad();
            segmentSumBackward(*xn, self.grad, off);
        }
    });
}

Var
sumRowsOp(const Var& a)
{
    const Tensor& av = a.value();
    Tensor v = outTensor(1, av.cols());
    for (int i = 0; i < av.rows(); ++i)
        for (int j = 0; j < av.cols(); ++j)
            v.at(0, j) += av.at(i, j);
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto an = a.node();
    return makeOp(std::move(v), {a}, [an](VarNode& self) {
        if (!an->requiresGrad)
            return;
        an->ensureGrad();
        for (int i = 0; i < an->value.rows(); ++i)
            for (int j = 0; j < an->value.cols(); ++j)
                an->grad.at(i, j) += self.grad.at(0, j);
    });
}

Var
meanRowsOp(const Var& a)
{
    const Tensor& av = a.value();
    int n = av.rows();
    if (n == 0)
        panic("meanRowsOp: empty input");
    const float inv_n = 1.0f / static_cast<float>(n);
    Tensor v = outTensor(1, av.cols());
    for (int i = 0; i < av.rows(); ++i)
        for (int j = 0; j < av.cols(); ++j)
            v.at(0, j) += av.at(i, j);
    // Scale the finished sums: same float ops as sumRows() * (1/n).
    v *= inv_n;
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto an = a.node();
    return makeOp(std::move(v), {a}, [an, n](VarNode& self) {
        if (!an->requiresGrad)
            return;
        an->ensureGrad();
        float inv = 1.0f / static_cast<float>(n);
        for (int i = 0; i < an->value.rows(); ++i)
            for (int j = 0; j < an->value.cols(); ++j)
                an->grad.at(i, j) += self.grad.at(0, j) * inv;
    });
}

Var
sumAllOp(const Var& a)
{
    Tensor v = outTensor(1, 1);
    v.at(0, 0) = a.value().sumAll();
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto an = a.node();
    return makeOp(std::move(v), {a}, [an](VarNode& self) {
        if (!an->requiresGrad)
            return;
        an->ensureGrad();
        float g = self.grad.at(0, 0);
        for (int i = 0; i < an->value.rows(); ++i)
            for (int j = 0; j < an->value.cols(); ++j)
                an->grad.at(i, j) += g;
    });
}

Var
spmm(std::shared_ptr<const CsrMatrix> a, const Var& h)
{
    if (!a)
        panic("spmm: null adjacency");
    Tensor v = outTensor(a->rows(), h.value().cols()); // zero-filled
    a->multiplyInto(h.value(), v);
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto hn = h.node();
    return makeOp(std::move(v), {h}, [a, hn](VarNode& self) {
        if (!hn->requiresGrad)
            return;
        hn->ensureGrad();
        hn->grad += a->transposeMultiply(self.grad);
    });
}

Var
bceWithLogits(const Var& logits, const Tensor& targets)
{
    const Tensor& z = logits.value();
    if (z.cols() != 1 || !z.sameShape(targets))
        fatal("bceWithLogits: logits and targets must both be Nx1");
    int n = z.rows();
    if (n == 0)
        fatal("bceWithLogits: empty batch");
    // loss_i = max(z,0) - z*y + log(1 + exp(-|z|))
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
        double zi = z.at(i, 0);
        double yi = targets.at(i, 0);
        total += std::max(zi, 0.0) - zi * yi +
            std::log1p(std::exp(-std::fabs(zi)));
    }
    Tensor v = outTensor(1, 1);
    v.at(0, 0) = static_cast<float>(total / n);
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto ln = logits.node();
    return makeOp(std::move(v), {logits}, [ln, targets, n](VarNode& self) {
        if (!ln->requiresGrad)
            return;
        ln->ensureGrad();
        float g = self.grad.at(0, 0) / static_cast<float>(n);
        for (int i = 0; i < n; ++i) {
            float zi = ln->value.at(i, 0);
            float p = 1.0f / (1.0f + std::exp(-zi));
            ln->grad.at(i, 0) += g * (p - targets.at(i, 0));
        }
    });
}

Var
mseLoss(const Var& pred, const Tensor& target)
{
    const Tensor& p = pred.value();
    if (!p.sameShape(target))
        fatal("mseLoss: shape mismatch");
    int n = static_cast<int>(p.size());
    if (n == 0)
        fatal("mseLoss: empty input");
    double total = 0.0;
    for (int i = 0; i < p.rows(); ++i)
        for (int j = 0; j < p.cols(); ++j) {
            double d = p.at(i, j) - target.at(i, j);
            total += d * d;
        }
    Tensor v = outTensor(1, 1);
    v.at(0, 0) = static_cast<float>(total / n);
    if (inferenceMode())
        return Var::noGrad(std::move(v));
    auto pn = pred.node();
    return makeOp(std::move(v), {pred}, [pn, target, n](VarNode& self) {
        if (!pn->requiresGrad)
            return;
        pn->ensureGrad();
        float g = 2.0f * self.grad.at(0, 0) / static_cast<float>(n);
        for (int i = 0; i < pn->value.rows(); ++i)
            for (int j = 0; j < pn->value.cols(); ++j)
                pn->grad.at(i, j) +=
                    g * (pn->value.at(i, j) - target.at(i, j));
    });
}

void
backward(const Var& root)
{
    if (!root.defined())
        panic("backward: undefined root");
    if (!root.node())
        fatal("backward: root was computed in inference mode "
              "(no tape was recorded)");
    if (root.value().rows() != 1 || root.value().cols() != 1)
        fatal("backward: root must be a 1x1 scalar");

    // Rejects entering an InferenceScope on this thread until the
    // pass finishes — and, symmetrically, refuses to start inside one.
    detail::BackwardInProgress in_progress;

    // Iterative DFS to produce a reverse topological order.
    std::vector<VarNode*> order;
    std::unordered_set<VarNode*> visited;
    std::vector<std::pair<VarNode*, std::size_t>> stack;
    stack.emplace_back(root.node().get(), 0);
    visited.insert(root.node().get());
    while (!stack.empty()) {
        auto& [node, next] = stack.back();
        if (next < node->parents.size()) {
            VarNode* p = node->parents[next++].get();
            if (p->requiresGrad && !visited.count(p)) {
                visited.insert(p);
                stack.emplace_back(p, 0);
            }
        } else {
            order.push_back(node);
            stack.pop_back();
        }
    }

    root.node()->ensureGrad();
    root.node()->grad.at(0, 0) = 1.0f;

    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        VarNode* node = *it;
        if (node->backwardFn && node->requiresGrad) {
            node->ensureGrad();
            node->backwardFn(*node);
        }
    }
}

} // namespace ag
} // namespace ccsa
