/**
 * @file
 * Tape-based reverse-mode automatic differentiation over Tensor.
 *
 * Every forward operation allocates a VarNode that records its operands
 * and a backward closure. backward() seeds the scalar output with
 * gradient one, walks the recorded graph in reverse topological order,
 * and accumulates gradients into every node that requires them. Leaf
 * Vars (model parameters) persist across steps; interior nodes are
 * reclaimed when the last Var referencing them goes out of scope.
 *
 * Inside a ccsa::InferenceScope (tensor/arena.hh) the same op set runs
 * tape-free: no VarNode, no parents vector, no backward closure — each
 * op writes its result into the thread's TensorArena and returns a
 * value-only Var (Var::noGrad). Both modes share the identical forward
 * compute, so inference results are bitwise-equal to the taped forward.
 *
 * The operation set is exactly what the paper's models need: dense and
 * sparse matrix products, elementwise arithmetic and non-linearities,
 * row gather (embedding lookup), concatenation, reductions, and a
 * numerically stable binary cross-entropy on logits.
 */

#ifndef CCSA_TENSOR_AUTOGRAD_HH
#define CCSA_TENSOR_AUTOGRAD_HH

#include <functional>
#include <memory>
#include <vector>

#include "tensor/sparse.hh"
#include "tensor/tensor.hh"

namespace ccsa
{
namespace ag
{

class VarNode;
using VarNodePtr = std::shared_ptr<VarNode>;

/** One recorded node of the computation tape. */
class VarNode
{
  public:
    Tensor value;
    Tensor grad;
    bool requiresGrad = false;
    std::vector<VarNodePtr> parents;
    std::function<void(VarNode&)> backwardFn;

    /** Allocate the gradient buffer on first use. */
    void
    ensureGrad()
    {
        if (grad.empty() && !value.empty())
            grad = Tensor::zeros(value.rows(), value.cols());
    }
};

/** Handle to a node of the autograd tape — or, in inference mode, a
 *  value-only result that never touched the tape. */
class Var
{
  public:
    /** An undefined Var (no node). */
    Var() = default;

    /** Wrap a tensor; requires_grad marks it as a trainable leaf. */
    explicit Var(Tensor v, bool requires_grad = false);

    /**
     * A value-only Var with no tape node — what every op returns
     * inside an InferenceScope. The payload is typically arena-backed
     * (a borrowed tensor), so copying one costs a pointer, not a heap
     * allocation, and the value dies with the scope unless copied out
     * via value().toOwned(). grad()/mutableValue()/zeroGrad() panic;
     * so does feeding one to a taped op outside a scope.
     */
    static Var noGrad(Tensor v);

    bool defined() const { return node_ != nullptr || raw_; }

    /** @return whether this is a tape-free (noGrad) Var. */
    bool isNoGrad() const { return raw_; }

    /** @return the forward value (fatal if undefined). */
    const Tensor& value() const;

    /** @return the accumulated gradient (allocated on demand). */
    Tensor& grad();

    /** Reset the gradient buffer to zero. */
    void zeroGrad();

    /** Replace the stored value in-place (optimizer update path). */
    Tensor& mutableValue();

    bool requiresGrad() const;

    /** Tape node; null for inference-mode (noGrad) Vars. */
    const VarNodePtr& node() const { return node_; }

  private:
    friend Var makeOp(Tensor value, std::vector<Var> parents,
                      std::function<void(VarNode&)> backward);
    VarNodePtr node_;
    Tensor rawValue_; // payload when raw_ (no node allocated)
    bool raw_ = false;
};

/** Create a constant (non-trainable) Var. Inside an InferenceScope
 *  this is tape-free (no VarNode is allocated). */
Var constant(Tensor t);

/** Create a trainable leaf Var (FatalError inside an InferenceScope —
 *  parameters are a training-time construct). */
Var leaf(Tensor t);

/** A rows x cols zero constant; arena-backed inside an InferenceScope
 *  so all-leaf tree-LSTM levels allocate nothing when serving. */
Var zeros(int rows, int cols);

/** Dense matrix product. */
Var matmul(const Var& a, const Var& b);

/**
 * Fused gate preactivation: x*W + h*U + bias (bias row-broadcast).
 * One tape node and two kernel calls instead of four ops; the
 * summation order is exactly add(matmul(x, W), matmul(h, U)) then
 * addRowBroadcast, so results are bitwise-identical to the unfused
 * chain. The level-batched tree-LSTM computes every gate this way.
 */
Var affinePair(const Var& x, const Var& w, const Var& h,
               const Var& u, const Var& bias);

/** Elementwise sum of two same-shape Vars. */
Var add(const Var& a, const Var& b);

/** Elementwise difference. */
Var sub(const Var& a, const Var& b);

/** Elementwise (Hadamard) product. */
Var mul(const Var& a, const Var& b);

/** Multiply by a compile-time constant scalar. */
Var scale(const Var& a, float s);

/** Elementwise sum of k >= 1 same-shape Vars (child-sum aggregation). */
Var addN(const std::vector<Var>& xs);

/** Logistic sigmoid. */
Var sigmoid(const Var& a);

/** Hyperbolic tangent. */
Var tanhOp(const Var& a);

/** Rectified linear unit. */
Var relu(const Var& a);

/** Add a 1xC bias row to every row of an NxC input. */
Var addRowBroadcast(const Var& a, const Var& bias);

/** Concatenate along columns (equal row counts). */
Var concatColsOp(const Var& a, const Var& b);

/** Gather rows of a table by index: (DxC, N indices) -> NxC. */
Var gatherRows(const Var& table, std::vector<int> indices);

/**
 * Stack k Vars (each r_i x C, equal column counts) into one
 * (sum r_i) x C tensor; the inverse split happens in backward. The
 * level-batched tree-LSTM uses this to fuse one wavefront's node
 * states into a single matrix.
 */
Var stackRows(const std::vector<Var>& xs);

/**
 * Scatter rows of x (N x C) into a num_rows x C tensor at the given
 * row indices; unmentioned rows are zero and repeated indices
 * accumulate. Exact inverse of gatherRows (backward gathers).
 */
Var scatterRows(const Var& x, std::vector<int> indices, int num_rows);

/**
 * Contiguous row slice [begin, begin + rows) of x as its own Var;
 * backward accumulates into the matching rows of x. The cheap
 * "row-sliced view" used to address one node inside a level batch.
 */
Var rowSlice(const Var& x, int begin, int rows);

/**
 * Multi-source row gather: picks[i] = (source index, row) selects
 * one row of one source Var; the result stacks all picked rows. One
 * op replaces a per-row slice-and-stack chain — this is how a
 * wavefront collects child states scattered across earlier levels.
 */
Var pickRows(const std::vector<Var>& sources,
             std::vector<std::pair<int, int>> picks);

/**
 * Segment sum over rows: offsets has S+1 non-decreasing entries with
 * offsets[S] == x.rows(); out (S x C) row s is the sum of x rows
 * [offsets[s], offsets[s+1]) accumulated in ascending order (empty
 * segments yield zero rows). This is the child-sum aggregation over
 * variable arity in one op.
 */
Var segmentSum(const Var& x, std::vector<int> offsets);

/**
 * Segment sum with an initial accumulator: out[s] starts from
 * init row s (init is S x C) and adds the segment's rows in
 * ascending order — the exact per-node summation order of
 * addN({init, x_k...}), preserving bitwise parity with the
 * per-node oracle.
 */
Var segmentSum(const Var& x, std::vector<int> offsets,
               const Var& init);

/** Sum over rows: NxC -> 1xC. */
Var sumRowsOp(const Var& a);

/** Mean over rows: NxC -> 1xC. */
Var meanRowsOp(const Var& a);

/** Sum of all elements -> 1x1 (used by tests). */
Var sumAllOp(const Var& a);

/** Sparse (constant) times dense (autograd) product. */
Var spmm(std::shared_ptr<const CsrMatrix> a, const Var& h);

/**
 * Numerically stable mean binary cross-entropy over logits.
 * @param logits Nx1 raw scores.
 * @param targets Nx1 labels in {0, 1} (constant).
 * @return 1x1 mean loss.
 */
Var bceWithLogits(const Var& logits, const Tensor& targets);

/** Mean squared error against a constant target (tests/toys). */
Var mseLoss(const Var& pred, const Tensor& target);

/**
 * Run reverse-mode differentiation from a scalar (1x1) output.
 * Gradients accumulate into every node with requiresGrad.
 * FatalError if called inside an InferenceScope (no tape exists), or
 * on a root that was computed in inference mode.
 */
void backward(const Var& root);

} // namespace ag
} // namespace ccsa

#endif // CCSA_TENSOR_AUTOGRAD_HH
