/**
 * @file
 * Tape-based reverse-mode automatic differentiation over Tensor.
 *
 * Every forward operation allocates a VarNode that records its operands
 * and a backward closure. backward() seeds the scalar output with
 * gradient one, walks the recorded graph in reverse topological order,
 * and accumulates gradients into every node that requires them. Leaf
 * Vars (model parameters) persist across steps; interior nodes are
 * reclaimed when the last Var referencing them goes out of scope.
 *
 * The operation set is exactly what the paper's models need: dense and
 * sparse matrix products, elementwise arithmetic and non-linearities,
 * row gather (embedding lookup), concatenation, reductions, and a
 * numerically stable binary cross-entropy on logits.
 */

#ifndef CCSA_TENSOR_AUTOGRAD_HH
#define CCSA_TENSOR_AUTOGRAD_HH

#include <functional>
#include <memory>
#include <vector>

#include "tensor/sparse.hh"
#include "tensor/tensor.hh"

namespace ccsa
{
namespace ag
{

class VarNode;
using VarNodePtr = std::shared_ptr<VarNode>;

/** One recorded node of the computation tape. */
class VarNode
{
  public:
    Tensor value;
    Tensor grad;
    bool requiresGrad = false;
    std::vector<VarNodePtr> parents;
    std::function<void(VarNode&)> backwardFn;

    /** Allocate the gradient buffer on first use. */
    void
    ensureGrad()
    {
        if (grad.empty() && !value.empty())
            grad = Tensor::zeros(value.rows(), value.cols());
    }
};

/** Handle to a node of the autograd tape. */
class Var
{
  public:
    /** An undefined Var (no node). */
    Var() = default;

    /** Wrap a tensor; requires_grad marks it as a trainable leaf. */
    explicit Var(Tensor v, bool requires_grad = false);

    bool defined() const { return node_ != nullptr; }

    /** @return the forward value (fatal if undefined). */
    const Tensor& value() const;

    /** @return the accumulated gradient (allocated on demand). */
    Tensor& grad();

    /** Reset the gradient buffer to zero. */
    void zeroGrad();

    /** Replace the stored value in-place (optimizer update path). */
    Tensor& mutableValue();

    bool requiresGrad() const;

    const VarNodePtr& node() const { return node_; }

  private:
    friend Var makeOp(Tensor value, std::vector<Var> parents,
                      std::function<void(VarNode&)> backward);
    VarNodePtr node_;
};

/** Create a constant (non-trainable) Var. */
Var constant(Tensor t);

/** Create a trainable leaf Var. */
Var leaf(Tensor t);

/** Dense matrix product. */
Var matmul(const Var& a, const Var& b);

/** Elementwise sum of two same-shape Vars. */
Var add(const Var& a, const Var& b);

/** Elementwise difference. */
Var sub(const Var& a, const Var& b);

/** Elementwise (Hadamard) product. */
Var mul(const Var& a, const Var& b);

/** Multiply by a compile-time constant scalar. */
Var scale(const Var& a, float s);

/** Elementwise sum of k >= 1 same-shape Vars (child-sum aggregation). */
Var addN(const std::vector<Var>& xs);

/** Logistic sigmoid. */
Var sigmoid(const Var& a);

/** Hyperbolic tangent. */
Var tanhOp(const Var& a);

/** Rectified linear unit. */
Var relu(const Var& a);

/** Add a 1xC bias row to every row of an NxC input. */
Var addRowBroadcast(const Var& a, const Var& bias);

/** Concatenate along columns (equal row counts). */
Var concatColsOp(const Var& a, const Var& b);

/** Gather rows of a table by index: (DxC, N indices) -> NxC. */
Var gatherRows(const Var& table, std::vector<int> indices);

/** Sum over rows: NxC -> 1xC. */
Var sumRowsOp(const Var& a);

/** Mean over rows: NxC -> 1xC. */
Var meanRowsOp(const Var& a);

/** Sum of all elements -> 1x1 (used by tests). */
Var sumAllOp(const Var& a);

/** Sparse (constant) times dense (autograd) product. */
Var spmm(std::shared_ptr<const CsrMatrix> a, const Var& h);

/**
 * Numerically stable mean binary cross-entropy over logits.
 * @param logits Nx1 raw scores.
 * @param targets Nx1 labels in {0, 1} (constant).
 * @return 1x1 mean loss.
 */
Var bceWithLogits(const Var& logits, const Tensor& targets);

/** Mean squared error against a constant target (tests/toys). */
Var mseLoss(const Var& pred, const Tensor& target);

/**
 * Run reverse-mode differentiation from a scalar (1x1) output.
 * Gradients accumulate into every node with requiresGrad.
 */
void backward(const Var& root);

} // namespace ag
} // namespace ccsa

#endif // CCSA_TENSOR_AUTOGRAD_HH
