/**
 * @file
 * AVX2+FMA matmul kernels. This is the ONLY translation unit built
 * with -mavx2 -mfma (see CMakeLists.txt), so the rest of the library
 * stays runnable on baseline x86-64: the dispatcher calls
 * avx2KernelsOrNull() once and gets nullptr unless BOTH the build
 * could emit AVX2 and the running CPU reports AVX2+FMA via cpuid.
 *
 * Kernel shape mirrors the scalar family (same kBlockK panels, same
 * 4-row register blocking) with the j loop widened to 8 float lanes
 * and multiply-adds contracted through FMA. Each output element
 * still consumes its inner-dimension terms in strictly ascending
 * order — one vector accumulator per (row, j-tile) — so every output
 * row remains a pure function of that row's inputs, bitwise-
 * invariant to how many rows share the call. Partial sums are
 * flushed to memory once per kBlockK panel (the scalar kernel
 * round-trips memory every step), which is one of the two deliberate
 * rounding differences from scalar; FMA's single rounding is the
 * other. See matmul_dispatch.hh for the documented tolerance.
 */

#include "tensor/matmul_dispatch.hh"

#if defined(__AVX2__) && defined(__FMA__) && \
    (defined(__x86_64__) || defined(__i386__))
#define CCSA_HAVE_AVX2_KERNELS 1
#include <immintrin.h>

#include <cmath>
#endif

#include <algorithm>
#include <cstddef>

namespace ccsa
{
namespace kernels
{

#if defined(CCSA_HAVE_AVX2_KERNELS)

namespace
{

constexpr int kBlockK = 128; // must match matmul_dispatch.cc

/** One row's j-panel: out[j0..j0+8) += sum_kk a[kk] * b[kk][j0..). */
inline __m256
panelAccum8(const float* arow, const float* b, int k0, int k1, int n,
            int j0)
{
    __m256 acc = _mm256_setzero_ps();
    for (int kk = k0; kk < k1; ++kk) {
        __m256 av = _mm256_set1_ps(arow[kk]);
        __m256 bv = _mm256_loadu_ps(
            b + static_cast<std::size_t>(kk) * n + j0);
        acc = _mm256_fmadd_ps(av, bv, acc);
    }
    return acc;
}

/** Scalar j-tail with the same FMA contraction as the vector lanes,
 * so a column's rounding never depends on n's remainder class. */
inline float
panelAccum1(const float* arow, const float* b, int k0, int k1, int n,
            int j)
{
    float acc = 0.0f;
    for (int kk = k0; kk < k1; ++kk)
        acc = std::fma(arow[kk],
                       b[static_cast<std::size_t>(kk) * n + j], acc);
    return acc;
}

void
gemmAccumAvx2(const float* a, const float* b, float* out, int m,
              int k, int n)
{
    for (int k0 = 0; k0 < k; k0 += kBlockK) {
        const int k1 = std::min(k, k0 + kBlockK);
        int i = 0;
        // 4 rows x 16 columns of register accumulators: each b
        // vector is loaded once per four rows, each a element is
        // broadcast once per 16 columns.
        for (; i + 4 <= m; i += 4) {
            const float* a0 = a + static_cast<std::size_t>(i) * k;
            const float* a1 = a0 + k;
            const float* a2 = a1 + k;
            const float* a3 = a2 + k;
            float* o0 = out + static_cast<std::size_t>(i) * n;
            float* o1 = o0 + n;
            float* o2 = o1 + n;
            float* o3 = o2 + n;
            int j = 0;
            for (; j + 16 <= n; j += 16) {
                __m256 c00 = _mm256_setzero_ps();
                __m256 c01 = _mm256_setzero_ps();
                __m256 c10 = _mm256_setzero_ps();
                __m256 c11 = _mm256_setzero_ps();
                __m256 c20 = _mm256_setzero_ps();
                __m256 c21 = _mm256_setzero_ps();
                __m256 c30 = _mm256_setzero_ps();
                __m256 c31 = _mm256_setzero_ps();
                for (int kk = k0; kk < k1; ++kk) {
                    const float* brow =
                        b + static_cast<std::size_t>(kk) * n + j;
                    __m256 b0 = _mm256_loadu_ps(brow);
                    __m256 b1 = _mm256_loadu_ps(brow + 8);
                    __m256 av0 = _mm256_set1_ps(a0[kk]);
                    __m256 av1 = _mm256_set1_ps(a1[kk]);
                    __m256 av2 = _mm256_set1_ps(a2[kk]);
                    __m256 av3 = _mm256_set1_ps(a3[kk]);
                    c00 = _mm256_fmadd_ps(av0, b0, c00);
                    c01 = _mm256_fmadd_ps(av0, b1, c01);
                    c10 = _mm256_fmadd_ps(av1, b0, c10);
                    c11 = _mm256_fmadd_ps(av1, b1, c11);
                    c20 = _mm256_fmadd_ps(av2, b0, c20);
                    c21 = _mm256_fmadd_ps(av2, b1, c21);
                    c30 = _mm256_fmadd_ps(av3, b0, c30);
                    c31 = _mm256_fmadd_ps(av3, b1, c31);
                }
                _mm256_storeu_ps(
                    o0 + j,
                    _mm256_add_ps(_mm256_loadu_ps(o0 + j), c00));
                _mm256_storeu_ps(
                    o0 + j + 8,
                    _mm256_add_ps(_mm256_loadu_ps(o0 + j + 8), c01));
                _mm256_storeu_ps(
                    o1 + j,
                    _mm256_add_ps(_mm256_loadu_ps(o1 + j), c10));
                _mm256_storeu_ps(
                    o1 + j + 8,
                    _mm256_add_ps(_mm256_loadu_ps(o1 + j + 8), c11));
                _mm256_storeu_ps(
                    o2 + j,
                    _mm256_add_ps(_mm256_loadu_ps(o2 + j), c20));
                _mm256_storeu_ps(
                    o2 + j + 8,
                    _mm256_add_ps(_mm256_loadu_ps(o2 + j + 8), c21));
                _mm256_storeu_ps(
                    o3 + j,
                    _mm256_add_ps(_mm256_loadu_ps(o3 + j), c30));
                _mm256_storeu_ps(
                    o3 + j + 8,
                    _mm256_add_ps(_mm256_loadu_ps(o3 + j + 8), c31));
            }
            for (; j + 8 <= n; j += 8) {
                _mm256_storeu_ps(
                    o0 + j,
                    _mm256_add_ps(_mm256_loadu_ps(o0 + j),
                                  panelAccum8(a0, b, k0, k1, n, j)));
                _mm256_storeu_ps(
                    o1 + j,
                    _mm256_add_ps(_mm256_loadu_ps(o1 + j),
                                  panelAccum8(a1, b, k0, k1, n, j)));
                _mm256_storeu_ps(
                    o2 + j,
                    _mm256_add_ps(_mm256_loadu_ps(o2 + j),
                                  panelAccum8(a2, b, k0, k1, n, j)));
                _mm256_storeu_ps(
                    o3 + j,
                    _mm256_add_ps(_mm256_loadu_ps(o3 + j),
                                  panelAccum8(a3, b, k0, k1, n, j)));
            }
            for (; j < n; ++j) {
                o0[j] += panelAccum1(a0, b, k0, k1, n, j);
                o1[j] += panelAccum1(a1, b, k0, k1, n, j);
                o2[j] += panelAccum1(a2, b, k0, k1, n, j);
                o3[j] += panelAccum1(a3, b, k0, k1, n, j);
            }
        }
        // Row tail: identical per-element schedule (same panels,
        // same j tiling), just one row of accumulators — a row's
        // bits never depend on whether it sat in a 4-row block.
        for (; i < m; ++i) {
            const float* arow = a + static_cast<std::size_t>(i) * k;
            float* orow = out + static_cast<std::size_t>(i) * n;
            int j = 0;
            for (; j + 8 <= n; j += 8) {
                _mm256_storeu_ps(
                    orow + j,
                    _mm256_add_ps(
                        _mm256_loadu_ps(orow + j),
                        panelAccum8(arow, b, k0, k1, n, j)));
            }
            for (; j < n; ++j)
                orow[j] += panelAccum1(arow, b, k0, k1, n, j);
        }
    }
}

void
gemmTransAAccumAvx2(const float* a, const float* g, float* out,
                    int m, int k, int n)
{
    // out[kk][j] += a[i][kk] * g[i][j], i ascending — same order as
    // scalar, j widened to 8 FMA lanes.
    for (int i = 0; i < m; ++i) {
        const float* arow = a + static_cast<std::size_t>(i) * k;
        const float* grow = g + static_cast<std::size_t>(i) * n;
        for (int kk = 0; kk < k; ++kk) {
            const __m256 av = _mm256_set1_ps(arow[kk]);
            float* orow = out + static_cast<std::size_t>(kk) * n;
            int j = 0;
            for (; j + 8 <= n; j += 8) {
                __m256 ov = _mm256_loadu_ps(orow + j);
                __m256 gv = _mm256_loadu_ps(grow + j);
                _mm256_storeu_ps(orow + j,
                                 _mm256_fmadd_ps(av, gv, ov));
            }
            for (; j < n; ++j)
                orow[j] = std::fma(arow[kk], grow[j], orow[j]);
        }
    }
}

/** Fixed-shape reduction of 8 lanes: (0+4)+(2+6), (1+5)+(3+7) ... —
 * deterministic regardless of surrounding code. */
inline float
hsum8(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
    return _mm_cvtss_f32(s);
}

void
gemmTransBAccumAvx2(const float* a, const float* b, float* out,
                    int m, int c, int n)
{
    // Row-by-row dot products along the contiguous dimension; the
    // 8 partial lanes reassociate the scalar kernel's single
    // accumulator (documented tolerance, backward path only).
    for (int i = 0; i < m; ++i) {
        const float* arow = a + static_cast<std::size_t>(i) * c;
        float* orow = out + static_cast<std::size_t>(i) * n;
        for (int kk = 0; kk < n; ++kk) {
            const float* brow = b + static_cast<std::size_t>(kk) * c;
            __m256 acc = _mm256_setzero_ps();
            int j = 0;
            for (; j + 8 <= c; j += 8) {
                acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + j),
                                      _mm256_loadu_ps(brow + j),
                                      acc);
            }
            float total = hsum8(acc);
            for (; j < c; ++j)
                total = std::fma(arow[j], brow[j], total);
            orow[kk] += total;
        }
    }
}

const MatmulKernels kAvx2{gemmAccumAvx2, gemmTransAAccumAvx2,
                          gemmTransBAccumAvx2, "avx2-fma"};

bool
cpuHasAvx2Fma()
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

} // namespace

const MatmulKernels*
avx2KernelsOrNull()
{
    static const MatmulKernels* result =
        cpuHasAvx2Fma() ? &kAvx2 : nullptr;
    return result;
}

#else // !CCSA_HAVE_AVX2_KERNELS

/** Non-x86 build (or a compiler without AVX2 codegen): the
 * dispatcher sees no vectorized family and serves scalar. */
const MatmulKernels*
avx2KernelsOrNull()
{
    return nullptr;
}

#endif

} // namespace kernels
} // namespace ccsa
