#include "tensor/matmul_dispatch.hh"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include <algorithm>

namespace ccsa
{
namespace kernels
{

namespace
{

// Cache-block size for the GEMM kernels: a kBlockK x n panel of the
// right-hand operand stays resident in L1/L2 while output rows
// stream over it. Shared by the scalar and AVX2 families so their
// panel boundaries line up (the AVX2 kernel flushes a partial sum
// per panel; identical blocking keeps its rounding independent of
// which family computed neighbouring rows).
constexpr int kBlockK = 128;

/**
 * out (m x n) += a (m x k, row-major) * b (k x n, row-major).
 *
 * The PR 3 scalar kernel, verbatim: register-blocked over four
 * output rows so each b row is loaded once per four rows of a, a
 * single ascending-order accumulator per output element (bitwise
 * row-batching invariance), and no zero-skip branch.
 */
void
gemmAccumScalar(const float* a, const float* b, float* out, int m,
                int k, int n)
{
    for (int k0 = 0; k0 < k; k0 += kBlockK) {
        int k1 = std::min(k, k0 + kBlockK);
        int i = 0;
        for (; i + 4 <= m; i += 4) {
            const float* a0 = a + static_cast<std::size_t>(i) * k;
            const float* a1 = a0 + k;
            const float* a2 = a1 + k;
            const float* a3 = a2 + k;
            float* o0 = out + static_cast<std::size_t>(i) * n;
            float* o1 = o0 + n;
            float* o2 = o1 + n;
            float* o3 = o2 + n;
            for (int kk = k0; kk < k1; ++kk) {
                float av0 = a0[kk];
                float av1 = a1[kk];
                float av2 = a2[kk];
                float av3 = a3[kk];
                const float* brow =
                    b + static_cast<std::size_t>(kk) * n;
                for (int j = 0; j < n; ++j) {
                    float bv = brow[j];
                    o0[j] += av0 * bv;
                    o1[j] += av1 * bv;
                    o2[j] += av2 * bv;
                    o3[j] += av3 * bv;
                }
            }
        }
        for (; i < m; ++i) {
            const float* arow = a + static_cast<std::size_t>(i) * k;
            float* orow = out + static_cast<std::size_t>(i) * n;
            for (int kk = k0; kk < k1; ++kk) {
                float av = arow[kk];
                const float* brow =
                    b + static_cast<std::size_t>(kk) * n;
                int j = 0;
                for (; j + 8 <= n; j += 8) {
                    orow[j] += av * brow[j];
                    orow[j + 1] += av * brow[j + 1];
                    orow[j + 2] += av * brow[j + 2];
                    orow[j + 3] += av * brow[j + 3];
                    orow[j + 4] += av * brow[j + 4];
                    orow[j + 5] += av * brow[j + 5];
                    orow[j + 6] += av * brow[j + 6];
                    orow[j + 7] += av * brow[j + 7];
                }
                for (; j < n; ++j)
                    orow[j] += av * brow[j];
            }
        }
    }
}

/** out (k x n) += a^T (k x m) * g; i-ascending per element — the
 * same order as transpose().matmul(g) with nothing materialised. */
void
gemmTransAAccumScalar(const float* a, const float* g, float* out,
                      int m, int k, int n)
{
    for (int i = 0; i < m; ++i) {
        const float* arow = a + static_cast<std::size_t>(i) * k;
        const float* grow = g + static_cast<std::size_t>(i) * n;
        for (int kk = 0; kk < k; ++kk) {
            float av = arow[kk];
            float* orow = out + static_cast<std::size_t>(kk) * n;
            for (int j = 0; j < n; ++j)
                orow[j] += av * grow[j];
        }
    }
}

/** out (m x n) += a (m x c) * b^T (c x n, b stored n x c): row-by-row
 * dot products, one accumulator each (j-ascending order). */
void
gemmTransBAccumScalar(const float* a, const float* b, float* out,
                      int m, int c, int n)
{
    for (int i = 0; i < m; ++i) {
        const float* arow = a + static_cast<std::size_t>(i) * c;
        float* orow = out + static_cast<std::size_t>(i) * n;
        for (int kk = 0; kk < n; ++kk) {
            const float* brow = b + static_cast<std::size_t>(kk) * c;
            float acc = 0.0f;
            for (int j = 0; j < c; ++j)
                acc += arow[j] * brow[j];
            orow[kk] += acc;
        }
    }
}

const MatmulKernels kScalar{gemmAccumScalar, gemmTransAAccumScalar,
                            gemmTransBAccumScalar, "scalar"};

/** Resolve the env override: 0 = auto, 1 = force scalar. */
bool
forceScalarFromEnv()
{
    const char* env = std::getenv("CCSA_MATMUL_KERNEL");
    if (env == nullptr)
        return false;
    return std::strcmp(env, "scalar") == 0;
}

} // namespace

const MatmulKernels&
scalarKernels()
{
    return kScalar;
}

// Defined in matmul_avx2.cc (its own translation unit so only that
// file is compiled with -mavx2 -mfma). Returns nullptr when the
// build has no AVX2 codegen or the CPU lacks the features.
const MatmulKernels* avx2KernelsOrNull();

const MatmulKernels&
simdKernels()
{
    const MatmulKernels* simd = avx2KernelsOrNull();
    return simd != nullptr ? *simd : kScalar;
}

bool
simdAvailable()
{
    return avx2KernelsOrNull() != nullptr;
}

const MatmulKernels&
activeKernels()
{
    // One decision per process: serving parity contracts (cache
    // hit/miss determinism, level-batched vs per-node) require every
    // matmul in a process to go through the same family.
    static const MatmulKernels& active =
        forceScalarFromEnv() ? kScalar : simdKernels();
    return active;
}

const char*
activeKernelName()
{
    return activeKernels().name;
}

} // namespace kernels
} // namespace ccsa
