/**
 * @file
 * Runtime-dispatched matmul kernels. Tensor::matmul and its
 * accumulate/transpose variants funnel every multiply-add through the
 * three raw-buffer kernels below; which implementation backs them is
 * decided ONCE, at first use, from cpuid plus an env override:
 *
 *  - "avx2-fma": 8-lane AVX2 kernels with FMA contraction, selected
 *    when the CPU reports AVX2+FMA (and the binary was built with an
 *    x86 compiler that can emit them).
 *  - "scalar": the PR 3 register-blocked scalar kernels, bitwise
 *    unchanged. Always available; the fallback on non-AVX2 hardware
 *    and the oracle the vectorized kernels are tested against.
 *
 * Set CCSA_MATMUL_KERNEL=scalar to force the scalar path (CI runs a
 * whole test leg this way); CCSA_MATMUL_KERNEL=avx2 asks for the
 * vectorized path and falls back to scalar when unsupported.
 *
 * Numerics contract (what callers may rely on):
 *  - Every kernel is deterministic, and every output ROW is a pure
 *    function of that row's inputs — bitwise-invariant to how many
 *    other rows share the call. The level-batched tree-LSTM parity
 *    (batched rows == solo gemv rows) holds under either kernel.
 *  - The scalar kernels accumulate each output element in strictly
 *    ascending inner-dimension order with one accumulator; the AVX2
 *    kernels keep that order but contract multiply-adds with FMA
 *    (one rounding instead of two) and block partial sums per
 *    cache-panel, so AVX2 results differ from scalar by normal
 *    float32 rounding (observed well under 1e-4 absolute for unit
 *    normal operands at the model's dimensions) — NOT bitwise.
 *  - gemmTransBAccum reduces along the contiguous dimension; the
 *    AVX2 variant uses 8 partial accumulators, so its rounding also
 *    differs from scalar within the same tolerance.
 */

#ifndef CCSA_TENSOR_MATMUL_DISPATCH_HH
#define CCSA_TENSOR_MATMUL_DISPATCH_HH

namespace ccsa
{
namespace kernels
{

/** out (m x n) += a (m x k) * b (k x n); all row-major, no aliasing. */
using GemmAccumFn = void (*)(const float* a, const float* b,
                             float* out, int m, int k, int n);

/** out (k x n) += a^T * g, a: m x k, g: m x n (gradient-of-weights). */
using GemmTransAAccumFn = void (*)(const float* a, const float* g,
                                   float* out, int m, int k, int n);

/** out (m x n) += a * b^T, a: m x c, b: n x c (gradient-of-inputs). */
using GemmTransBAccumFn = void (*)(const float* a, const float* b,
                                   float* out, int m, int c, int n);

/** One selectable kernel family. */
struct MatmulKernels
{
    GemmAccumFn gemmAccum = nullptr;
    GemmTransAAccumFn gemmTransAAccum = nullptr;
    GemmTransBAccumFn gemmTransBAccum = nullptr;
    /** Stable identifier: "scalar" or "avx2-fma". */
    const char* name = "";
};

/** The PR 3 scalar kernels — always available, bitwise-stable. */
const MatmulKernels& scalarKernels();

/**
 * The vectorized kernels, or scalarKernels() when the build or the
 * CPU cannot run them. Exposed so tests can exercise both paths in
 * one process regardless of what the dispatcher picked.
 */
const MatmulKernels& simdKernels();

/** @return true when simdKernels() is a genuinely vectorized family
 * (build-time support AND the CPU reports AVX2+FMA). */
bool simdAvailable();

/**
 * The family every Tensor matmul routes through, selected once at
 * first call (thread-safe) from simdAvailable() and the
 * CCSA_MATMUL_KERNEL env override. Stable for the process lifetime:
 * changing the env var afterwards has no effect.
 */
const MatmulKernels& activeKernels();

/** activeKernels().name — for logs, benches, and the README table. */
const char* activeKernelName();

} // namespace kernels
} // namespace ccsa

#endif // CCSA_TENSOR_MATMUL_DISPATCH_HH
