#include "tensor/sparse.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ccsa
{

CsrMatrix
CsrMatrix::fromCoo(int rows, int cols, std::vector<CooEntry> entries)
{
    for (const auto& e : entries) {
        if (e.row < 0 || e.row >= rows || e.col < 0 || e.col >= cols)
            panic("CsrMatrix::fromCoo: entry out of bounds");
    }
    std::sort(entries.begin(), entries.end(),
              [](const CooEntry& a, const CooEntry& b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });

    CsrMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.rowPtr_.assign(rows + 1, 0);
    for (std::size_t i = 0; i < entries.size(); ++i) {
        // Merge duplicates by summation.
        if (!m.colIdx_.empty() && i > 0 &&
            entries[i].row == entries[i - 1].row &&
            entries[i].col == entries[i - 1].col) {
            m.values_.back() += entries[i].value;
            continue;
        }
        m.colIdx_.push_back(entries[i].col);
        m.values_.push_back(entries[i].value);
        ++m.rowPtr_[entries[i].row + 1];
    }
    for (int r = 0; r < rows; ++r)
        m.rowPtr_[r + 1] += m.rowPtr_[r];
    return m;
}

Tensor
CsrMatrix::multiply(const Tensor& dense) const
{
    Tensor out(rows_, dense.cols());
    multiplyInto(dense, out);
    return out;
}

void
CsrMatrix::multiplyInto(const Tensor& dense, Tensor& out) const
{
    if (dense.rows() != cols_)
        panic("CsrMatrix::multiply: dimension mismatch");
    if (out.rows() != rows_ || out.cols() != dense.cols())
        panic("CsrMatrix::multiplyInto: output must be ", rows_, "x",
              dense.cols());
    for (int r = 0; r < rows_; ++r) {
        for (int p = rowPtr_[r]; p < rowPtr_[r + 1]; ++p) {
            int c = colIdx_[p];
            float v = values_[p];
            for (int j = 0; j < dense.cols(); ++j)
                out.at(r, j) += v * dense.at(c, j);
        }
    }
}

Tensor
CsrMatrix::transposeMultiply(const Tensor& dense) const
{
    if (dense.rows() != rows_)
        panic("CsrMatrix::transposeMultiply: dimension mismatch");
    Tensor out(cols_, dense.cols());
    for (int r = 0; r < rows_; ++r) {
        for (int p = rowPtr_[r]; p < rowPtr_[r + 1]; ++p) {
            int c = colIdx_[p];
            float v = values_[p];
            for (int j = 0; j < dense.cols(); ++j)
                out.at(c, j) += v * dense.at(r, j);
        }
    }
    return out;
}

Tensor
CsrMatrix::toDense() const
{
    Tensor out(rows_, cols_);
    for (int r = 0; r < rows_; ++r)
        for (int p = rowPtr_[r]; p < rowPtr_[r + 1]; ++p)
            out.at(r, colIdx_[p]) += values_[p];
    return out;
}

} // namespace ccsa
