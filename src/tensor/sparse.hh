/**
 * @file
 * Compressed sparse row matrices, used for the degree-normalised
 * adjacency matrices consumed by the GCN baseline (Kipf & Welling).
 * Adjacencies are constants of the computation graph, so only
 * sparse-times-dense products (and their transposed form, needed for
 * the backward pass) are provided.
 */

#ifndef CCSA_TENSOR_SPARSE_HH
#define CCSA_TENSOR_SPARSE_HH

#include <vector>

#include "tensor/tensor.hh"

namespace ccsa
{

/** One coordinate-format entry used to assemble a CsrMatrix. */
struct CooEntry
{
    int row;
    int col;
    float value;
};

/** Immutable CSR sparse matrix. */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /** Build from coordinate entries (duplicates are summed). */
    static CsrMatrix fromCoo(int rows, int cols,
                             std::vector<CooEntry> entries);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    std::size_t nnz() const { return values_.size(); }

    /** Dense product: this (RxC) times dense (CxN) -> RxN. */
    Tensor multiply(const Tensor& dense) const;

    /**
     * Accumulating dense product into a caller-owned buffer:
     * out += this * dense (out must be RxN; zero it for a plain
     * product). The inference path uses this with arena storage so
     * spmm allocates nothing.
     */
    void multiplyInto(const Tensor& dense, Tensor& out) const;

    /** Transposed product: this^T (CxR) times dense (RxN) -> CxN. */
    Tensor transposeMultiply(const Tensor& dense) const;

    /** Materialise as a dense tensor (tests / small graphs only). */
    Tensor toDense() const;

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<int> rowPtr_;
    std::vector<int> colIdx_;
    std::vector<float> values_;
};

} // namespace ccsa

#endif // CCSA_TENSOR_SPARSE_HH
