#include "tensor/tensor.hh"

#include "tensor/matmul_dispatch.hh"

#include <algorithm>
#include <cmath>

namespace ccsa
{

Tensor::Tensor(int rows, int cols, float fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, fill)
{
    if (rows < 0 || cols < 0)
        panic("Tensor: negative dimension");
}

Tensor
Tensor::fromVector(const std::vector<float>& data, int rows, int cols)
{
    if (data.size() != static_cast<std::size_t>(rows) * cols)
        panic("Tensor::fromVector: size mismatch");
    Tensor t(rows, cols);
    t.data_ = data;
    return t;
}

// The raw GEMM loops live in src/tensor/matmul_dispatch.cc (scalar)
// and src/tensor/matmul_avx2.cc (vectorized); kernels::activeKernels()
// picks one family per process from cpuid + CCSA_MATMUL_KERNEL.

Tensor
Tensor::matmul(const Tensor& o) const
{
    if (cols_ != o.rows_)
        panic("Tensor::matmul: inner dimensions ", cols_, " vs ",
              o.rows_);
    Tensor out(rows_, o.cols_);
    kernels::activeKernels().gemmAccum(data_.data(), o.data_.data(),
                                       out.data_.data(), rows_,
                                       cols_, o.cols_);
    return out;
}

void
Tensor::matmulInto(const Tensor& o, Tensor& out) const
{
    if (cols_ != o.rows_)
        panic("Tensor::matmulInto: inner dimensions ", cols_, " vs ",
              o.rows_);
    if (out.rows_ != rows_ || out.cols_ != o.cols_)
        panic("Tensor::matmulInto: output must be ", rows_, "x",
              o.cols_);
    out.fill(0.0f);
    kernels::activeKernels().gemmAccum(data_.data(), o.data_.data(),
                                       out.data_.data(), rows_,
                                       cols_, o.cols_);
}

void
Tensor::matmulAccumInto(const Tensor& o, Tensor& out) const
{
    if (cols_ != o.rows_)
        panic("Tensor::matmulAccumInto: inner dimensions ", cols_,
              " vs ", o.rows_);
    if (out.rows_ != rows_ || out.cols_ != o.cols_)
        panic("Tensor::matmulAccumInto: output must be ", rows_, "x",
              o.cols_);
    kernels::activeKernels().gemmAccum(data_.data(), o.data_.data(),
                                       out.data_.data(), rows_,
                                       cols_, o.cols_);
}

void
Tensor::matmulTransAAccumInto(const Tensor& o, Tensor& out) const
{
    // out (cols_ x o.cols_) += this^T (cols_ x rows_) * o.
    if (rows_ != o.rows_)
        panic("Tensor::matmulTransAAccumInto: row counts ", rows_,
              " vs ", o.rows_);
    if (out.rows_ != cols_ || out.cols_ != o.cols_)
        panic("Tensor::matmulTransAAccumInto: output must be ", cols_,
              "x", o.cols_);
    // out[k][j] = sum_i this[i][k] * o[i][j], i ascending: the same
    // per-element order as transpose().matmul(o), with no transpose
    // materialised and no product temporary.
    kernels::activeKernels().gemmTransAAccum(
        data_.data(), o.data_.data(), out.data_.data(), rows_, cols_,
        o.cols_);
}

void
Tensor::matmulTransBAccumInto(const Tensor& o, Tensor& out) const
{
    // out (rows_ x o.rows_) += this (rows_ x cols_) * o^T.
    if (cols_ != o.cols_)
        panic("Tensor::matmulTransBAccumInto: column counts ", cols_,
              " vs ", o.cols_);
    if (out.rows_ != rows_ || out.cols_ != o.rows_)
        panic("Tensor::matmulTransBAccumInto: output must be ", rows_,
              "x", o.rows_);
    // Row-by-row dot products; both operands stream along their
    // natural row-major layout.
    kernels::activeKernels().gemmTransBAccum(
        data_.data(), o.data_.data(), out.data_.data(), rows_, cols_,
        o.rows_);
}

Tensor
Tensor::matmulReference(const Tensor& o) const
{
    if (cols_ != o.rows_)
        panic("Tensor::matmulReference: inner dimensions ", cols_,
              " vs ", o.rows_);
    Tensor out(rows_, o.cols_);
    // The original scalar ikj loop with the per-element zero skip.
    for (int i = 0; i < rows_; ++i) {
        const float* arow = data_.data() +
            static_cast<std::size_t>(i) * cols_;
        float* orow = out.data_.data() +
            static_cast<std::size_t>(i) * o.cols_;
        for (int k = 0; k < cols_; ++k) {
            float a = arow[k];
            if (a == 0.0f)
                continue;
            const float* brow = o.data_.data() +
                static_cast<std::size_t>(k) * o.cols_;
            for (int j = 0; j < o.cols_; ++j)
                orow[j] += a * brow[j];
        }
    }
    return out;
}

Tensor
Tensor::transpose() const
{
    Tensor out(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            out.at(j, i) = at(i, j);
    return out;
}

Tensor
Tensor::operator+(const Tensor& o) const
{
    if (!sameShape(o))
        panic("Tensor::operator+: shape mismatch");
    Tensor out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += o.data_[i];
    return out;
}

Tensor
Tensor::operator-(const Tensor& o) const
{
    if (!sameShape(o))
        panic("Tensor::operator-: shape mismatch");
    Tensor out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] -= o.data_[i];
    return out;
}

Tensor
Tensor::operator*(const Tensor& o) const
{
    if (!sameShape(o))
        panic("Tensor::operator*: shape mismatch");
    Tensor out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] *= o.data_[i];
    return out;
}

Tensor&
Tensor::operator+=(const Tensor& o)
{
    if (!sameShape(o))
        panic("Tensor::operator+=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += o.data_[i];
    return *this;
}

Tensor&
Tensor::operator-=(const Tensor& o)
{
    if (!sameShape(o))
        panic("Tensor::operator-=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= o.data_[i];
    return *this;
}

Tensor
Tensor::operator*(float s) const
{
    Tensor out = *this;
    for (auto& v : out.data_)
        v *= s;
    return out;
}

Tensor&
Tensor::operator*=(float s)
{
    for (auto& v : data_)
        v *= s;
    return *this;
}

Tensor
Tensor::addRowBroadcast(const Tensor& row) const
{
    if (row.rows_ != 1 || row.cols_ != cols_)
        panic("Tensor::addRowBroadcast: bias must be 1x", cols_);
    Tensor out = *this;
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            out.at(i, j) += row.at(0, j);
    return out;
}

Tensor
Tensor::sumRows() const
{
    Tensor out(1, cols_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            out.at(0, j) += at(i, j);
    return out;
}

float
Tensor::sumAll() const
{
    float s = 0.0f;
    for (float v : data_)
        s += v;
    return s;
}

float
Tensor::meanAll() const
{
    if (data_.empty())
        fatal("Tensor::meanAll: empty tensor");
    return sumAll() / static_cast<float>(data_.size());
}

float
Tensor::normSq() const
{
    float s = 0.0f;
    for (float v : data_)
        s += v * v;
    return s;
}

Tensor
Tensor::rowCopy(int r) const
{
    if (r < 0 || r >= rows_)
        panic("Tensor::rowCopy: row out of range");
    Tensor out(1, cols_);
    for (int j = 0; j < cols_; ++j)
        out.at(0, j) = at(r, j);
    return out;
}

void
Tensor::setRow(int r, const Tensor& row)
{
    if (r < 0 || r >= rows_ || row.rows_ != 1 || row.cols_ != cols_)
        panic("Tensor::setRow: shape mismatch");
    for (int j = 0; j < cols_; ++j)
        at(r, j) = row.at(0, j);
}

void
Tensor::fillUniform(Rng& rng, float lo, float hi)
{
    for (auto& v : data_)
        v = static_cast<float>(rng.uniform(lo, hi));
}

void
Tensor::fillNormal(Rng& rng, float mean, float stddev)
{
    for (auto& v : data_)
        v = static_cast<float>(rng.normal(mean, stddev));
}

void
Tensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

float
Tensor::maxAbsDiff(const Tensor& o) const
{
    if (!sameShape(o))
        panic("Tensor::maxAbsDiff: shape mismatch");
    float m = 0.0f;
    for (std::size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::fabs(data_[i] - o.data_[i]));
    return m;
}

Tensor
concatCols(const Tensor& a, const Tensor& b)
{
    if (a.rows() != b.rows())
        panic("concatCols: row mismatch");
    Tensor out(a.rows(), a.cols() + b.cols());
    for (int i = 0; i < a.rows(); ++i) {
        for (int j = 0; j < a.cols(); ++j)
            out.at(i, j) = a.at(i, j);
        for (int j = 0; j < b.cols(); ++j)
            out.at(i, a.cols() + j) = b.at(i, j);
    }
    return out;
}

} // namespace ccsa
