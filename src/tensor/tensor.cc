#include "tensor/tensor.hh"

#include "tensor/matmul_dispatch.hh"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace ccsa
{

namespace
{

/** Relaxed: the tests that read this only need eventual counts. */
std::atomic<std::uint64_t> tensor_heap_allocs{0};

void
noteHeapAlloc()
{
    tensor_heap_allocs.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

std::uint64_t
tensorHeapAllocCount()
{
    return tensor_heap_allocs.load(std::memory_order_relaxed);
}

Tensor::Tensor(int rows, int cols, float fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, fill)
{
    if (rows < 0 || cols < 0)
        panic("Tensor: negative dimension");
    if (!data_.empty())
        noteHeapAlloc();
}

Tensor::Tensor(const Tensor& o)
    : rows_(o.rows_), cols_(o.cols_), span_(o.span_), data_(o.data_)
{
    if (!data_.empty())
        noteHeapAlloc();
}

Tensor&
Tensor::operator=(const Tensor& o)
{
    if (this == &o)
        return *this;
    rows_ = o.rows_;
    cols_ = o.cols_;
    span_ = o.span_;
    data_ = o.data_;
    if (!data_.empty())
        noteHeapAlloc();
    return *this;
}

Tensor
Tensor::fromVector(const std::vector<float>& data, int rows, int cols)
{
    if (data.size() != static_cast<std::size_t>(rows) * cols)
        panic("Tensor::fromVector: size mismatch");
    Tensor t(rows, cols);
    t.data_ = data;
    return t;
}

Tensor
Tensor::borrowed(float* storage, int rows, int cols)
{
    if (rows < 0 || cols < 0)
        panic("Tensor::borrowed: negative dimension");
    if (storage == nullptr &&
        static_cast<std::size_t>(rows) * cols != 0)
        panic("Tensor::borrowed: null storage for non-empty shape");
    Tensor t;
    t.rows_ = rows;
    t.cols_ = cols;
    t.span_ = storage;
    return t;
}

Tensor
Tensor::toOwned() const
{
    Tensor out(rows_, cols_);
    if (!empty())
        std::copy(data(), data() + size(), out.data());
    return out;
}

// The raw GEMM loops live in src/tensor/matmul_dispatch.cc (scalar)
// and src/tensor/matmul_avx2.cc (vectorized); kernels::activeKernels()
// picks one family per process from cpuid + CCSA_MATMUL_KERNEL.

Tensor
Tensor::matmul(const Tensor& o) const
{
    if (cols_ != o.rows_)
        panic("Tensor::matmul: inner dimensions ", cols_, " vs ",
              o.rows_);
    Tensor out(rows_, o.cols_);
    kernels::activeKernels().gemmAccum(data(), o.data(), out.data(),
                                       rows_, cols_, o.cols_);
    return out;
}

void
Tensor::matmulInto(const Tensor& o, Tensor& out) const
{
    if (cols_ != o.rows_)
        panic("Tensor::matmulInto: inner dimensions ", cols_, " vs ",
              o.rows_);
    if (out.rows_ != rows_ || out.cols_ != o.cols_)
        panic("Tensor::matmulInto: output must be ", rows_, "x",
              o.cols_);
    out.fill(0.0f);
    kernels::activeKernels().gemmAccum(data(), o.data(), out.data(),
                                       rows_, cols_, o.cols_);
}

void
Tensor::matmulAccumInto(const Tensor& o, Tensor& out) const
{
    if (cols_ != o.rows_)
        panic("Tensor::matmulAccumInto: inner dimensions ", cols_,
              " vs ", o.rows_);
    if (out.rows_ != rows_ || out.cols_ != o.cols_)
        panic("Tensor::matmulAccumInto: output must be ", rows_, "x",
              o.cols_);
    kernels::activeKernels().gemmAccum(data(), o.data(), out.data(),
                                       rows_, cols_, o.cols_);
}

void
Tensor::matmulTransAAccumInto(const Tensor& o, Tensor& out) const
{
    // out (cols_ x o.cols_) += this^T (cols_ x rows_) * o.
    if (rows_ != o.rows_)
        panic("Tensor::matmulTransAAccumInto: row counts ", rows_,
              " vs ", o.rows_);
    if (out.rows_ != cols_ || out.cols_ != o.cols_)
        panic("Tensor::matmulTransAAccumInto: output must be ", cols_,
              "x", o.cols_);
    // out[k][j] = sum_i this[i][k] * o[i][j], i ascending: the same
    // per-element order as transpose().matmul(o), with no transpose
    // materialised and no product temporary.
    kernels::activeKernels().gemmTransAAccum(
        data(), o.data(), out.data(), rows_, cols_, o.cols_);
}

void
Tensor::matmulTransBAccumInto(const Tensor& o, Tensor& out) const
{
    // out (rows_ x o.rows_) += this (rows_ x cols_) * o^T.
    if (cols_ != o.cols_)
        panic("Tensor::matmulTransBAccumInto: column counts ", cols_,
              " vs ", o.cols_);
    if (out.rows_ != rows_ || out.cols_ != o.rows_)
        panic("Tensor::matmulTransBAccumInto: output must be ", rows_,
              "x", o.rows_);
    // Row-by-row dot products; both operands stream along their
    // natural row-major layout.
    kernels::activeKernels().gemmTransBAccum(
        data(), o.data(), out.data(), rows_, cols_, o.rows_);
}

Tensor
Tensor::matmulReference(const Tensor& o) const
{
    if (cols_ != o.rows_)
        panic("Tensor::matmulReference: inner dimensions ", cols_,
              " vs ", o.rows_);
    Tensor out(rows_, o.cols_);
    // The original scalar ikj loop with the per-element zero skip.
    for (int i = 0; i < rows_; ++i) {
        const float* arow = data() +
            static_cast<std::size_t>(i) * cols_;
        float* orow = out.data() +
            static_cast<std::size_t>(i) * o.cols_;
        for (int k = 0; k < cols_; ++k) {
            float a = arow[k];
            if (a == 0.0f)
                continue;
            const float* brow = o.data() +
                static_cast<std::size_t>(k) * o.cols_;
            for (int j = 0; j < o.cols_; ++j)
                orow[j] += a * brow[j];
        }
    }
    return out;
}

Tensor
Tensor::transpose() const
{
    Tensor out(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            out.at(j, i) = at(i, j);
    return out;
}

Tensor
Tensor::operator+(const Tensor& o) const
{
    if (!sameShape(o))
        panic("Tensor::operator+: shape mismatch");
    Tensor out(rows_, cols_);
    const float* a = data();
    const float* b = o.data();
    float* dst = out.data();
    for (std::size_t i = 0; i < size(); ++i)
        dst[i] = a[i] + b[i];
    return out;
}

Tensor
Tensor::operator-(const Tensor& o) const
{
    if (!sameShape(o))
        panic("Tensor::operator-: shape mismatch");
    Tensor out(rows_, cols_);
    const float* a = data();
    const float* b = o.data();
    float* dst = out.data();
    for (std::size_t i = 0; i < size(); ++i)
        dst[i] = a[i] - b[i];
    return out;
}

Tensor
Tensor::operator*(const Tensor& o) const
{
    if (!sameShape(o))
        panic("Tensor::operator*: shape mismatch");
    Tensor out(rows_, cols_);
    const float* a = data();
    const float* b = o.data();
    float* dst = out.data();
    for (std::size_t i = 0; i < size(); ++i)
        dst[i] = a[i] * b[i];
    return out;
}

Tensor&
Tensor::operator+=(const Tensor& o)
{
    if (!sameShape(o))
        panic("Tensor::operator+=: shape mismatch");
    float* dst = data();
    const float* src = o.data();
    for (std::size_t i = 0; i < size(); ++i)
        dst[i] += src[i];
    return *this;
}

Tensor&
Tensor::operator-=(const Tensor& o)
{
    if (!sameShape(o))
        panic("Tensor::operator-=: shape mismatch");
    float* dst = data();
    const float* src = o.data();
    for (std::size_t i = 0; i < size(); ++i)
        dst[i] -= src[i];
    return *this;
}

Tensor
Tensor::operator*(float s) const
{
    Tensor out(rows_, cols_);
    const float* a = data();
    float* dst = out.data();
    for (std::size_t i = 0; i < size(); ++i)
        dst[i] = a[i] * s;
    return out;
}

Tensor&
Tensor::operator*=(float s)
{
    float* dst = data();
    for (std::size_t i = 0; i < size(); ++i)
        dst[i] *= s;
    return *this;
}

Tensor
Tensor::addRowBroadcast(const Tensor& row) const
{
    if (row.rows_ != 1 || row.cols_ != cols_)
        panic("Tensor::addRowBroadcast: bias must be 1x", cols_);
    Tensor out = toOwned();
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            out.at(i, j) += row.at(0, j);
    return out;
}

Tensor
Tensor::sumRows() const
{
    Tensor out(1, cols_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            out.at(0, j) += at(i, j);
    return out;
}

float
Tensor::sumAll() const
{
    float s = 0.0f;
    const float* p = data();
    for (std::size_t i = 0; i < size(); ++i)
        s += p[i];
    return s;
}

float
Tensor::meanAll() const
{
    if (empty())
        fatal("Tensor::meanAll: empty tensor");
    return sumAll() / static_cast<float>(size());
}

float
Tensor::normSq() const
{
    float s = 0.0f;
    const float* p = data();
    for (std::size_t i = 0; i < size(); ++i)
        s += p[i] * p[i];
    return s;
}

Tensor
Tensor::rowCopy(int r) const
{
    if (r < 0 || r >= rows_)
        panic("Tensor::rowCopy: row out of range");
    Tensor out(1, cols_);
    for (int j = 0; j < cols_; ++j)
        out.at(0, j) = at(r, j);
    return out;
}

void
Tensor::setRow(int r, const Tensor& row)
{
    if (r < 0 || r >= rows_ || row.rows_ != 1 || row.cols_ != cols_)
        panic("Tensor::setRow: shape mismatch");
    for (int j = 0; j < cols_; ++j)
        at(r, j) = row.at(0, j);
}

void
Tensor::fillUniform(Rng& rng, float lo, float hi)
{
    float* p = data();
    for (std::size_t i = 0; i < size(); ++i)
        p[i] = static_cast<float>(rng.uniform(lo, hi));
}

void
Tensor::fillNormal(Rng& rng, float mean, float stddev)
{
    float* p = data();
    for (std::size_t i = 0; i < size(); ++i)
        p[i] = static_cast<float>(rng.normal(mean, stddev));
}

void
Tensor::fill(float v)
{
    float* p = data();
    std::fill(p, p + size(), v);
}

float
Tensor::maxAbsDiff(const Tensor& o) const
{
    if (!sameShape(o))
        panic("Tensor::maxAbsDiff: shape mismatch");
    float m = 0.0f;
    const float* a = data();
    const float* b = o.data();
    for (std::size_t i = 0; i < size(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

Tensor
concatCols(const Tensor& a, const Tensor& b)
{
    if (a.rows() != b.rows())
        panic("concatCols: row mismatch");
    Tensor out(a.rows(), a.cols() + b.cols());
    for (int i = 0; i < a.rows(); ++i) {
        for (int j = 0; j < a.cols(); ++j)
            out.at(i, j) = a.at(i, j);
        for (int j = 0; j < b.cols(); ++j)
            out.at(i, a.cols() + j) = b.at(i, j);
    }
    return out;
}

} // namespace ccsa
