#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>

namespace ccsa
{

Tensor::Tensor(int rows, int cols, float fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, fill)
{
    if (rows < 0 || cols < 0)
        panic("Tensor: negative dimension");
}

Tensor
Tensor::fromVector(const std::vector<float>& data, int rows, int cols)
{
    if (data.size() != static_cast<std::size_t>(rows) * cols)
        panic("Tensor::fromVector: size mismatch");
    Tensor t(rows, cols);
    t.data_ = data;
    return t;
}

namespace
{

// Cache-block size for the GEMM kernel: a kBlockK x n panel of the
// right-hand operand stays resident in L1/L2 while output rows
// stream over it. Accumulation over the inner dimension is kept
// strictly ascending with a single accumulator per output element,
// so the kernel is bitwise-deterministic and row-batching never
// changes any individual output row.
constexpr int kBlockK = 128;

/**
 * out (m x n) += a (m x k, row-major) * b (k x n, row-major).
 *
 * Register-blocked over four output rows: each b row is loaded once
 * per four rows of a, which is where batched (many-row) products
 * pull ahead of one-row-at-a-time gemv calls. No zero-skip branch:
 * on dense activations the per-element test poisons the pipeline and
 * blocks vectorisation of the j loop.
 */
void
gemmAccum(const float* a, const float* b, float* out, int m, int k,
          int n)
{
    for (int k0 = 0; k0 < k; k0 += kBlockK) {
        int k1 = std::min(k, k0 + kBlockK);
        int i = 0;
        for (; i + 4 <= m; i += 4) {
            const float* a0 = a + static_cast<std::size_t>(i) * k;
            const float* a1 = a0 + k;
            const float* a2 = a1 + k;
            const float* a3 = a2 + k;
            float* o0 = out + static_cast<std::size_t>(i) * n;
            float* o1 = o0 + n;
            float* o2 = o1 + n;
            float* o3 = o2 + n;
            for (int kk = k0; kk < k1; ++kk) {
                float av0 = a0[kk];
                float av1 = a1[kk];
                float av2 = a2[kk];
                float av3 = a3[kk];
                const float* brow =
                    b + static_cast<std::size_t>(kk) * n;
                for (int j = 0; j < n; ++j) {
                    float bv = brow[j];
                    o0[j] += av0 * bv;
                    o1[j] += av1 * bv;
                    o2[j] += av2 * bv;
                    o3[j] += av3 * bv;
                }
            }
        }
        for (; i < m; ++i) {
            const float* arow = a + static_cast<std::size_t>(i) * k;
            float* orow = out + static_cast<std::size_t>(i) * n;
            for (int kk = k0; kk < k1; ++kk) {
                float av = arow[kk];
                const float* brow =
                    b + static_cast<std::size_t>(kk) * n;
                int j = 0;
                for (; j + 8 <= n; j += 8) {
                    orow[j] += av * brow[j];
                    orow[j + 1] += av * brow[j + 1];
                    orow[j + 2] += av * brow[j + 2];
                    orow[j + 3] += av * brow[j + 3];
                    orow[j + 4] += av * brow[j + 4];
                    orow[j + 5] += av * brow[j + 5];
                    orow[j + 6] += av * brow[j + 6];
                    orow[j + 7] += av * brow[j + 7];
                }
                for (; j < n; ++j)
                    orow[j] += av * brow[j];
            }
        }
    }
}

} // namespace

Tensor
Tensor::matmul(const Tensor& o) const
{
    if (cols_ != o.rows_)
        panic("Tensor::matmul: inner dimensions ", cols_, " vs ",
              o.rows_);
    Tensor out(rows_, o.cols_);
    gemmAccum(data_.data(), o.data_.data(), out.data_.data(), rows_,
              cols_, o.cols_);
    return out;
}

void
Tensor::matmulInto(const Tensor& o, Tensor& out) const
{
    if (cols_ != o.rows_)
        panic("Tensor::matmulInto: inner dimensions ", cols_, " vs ",
              o.rows_);
    if (out.rows_ != rows_ || out.cols_ != o.cols_)
        panic("Tensor::matmulInto: output must be ", rows_, "x",
              o.cols_);
    out.fill(0.0f);
    gemmAccum(data_.data(), o.data_.data(), out.data_.data(), rows_,
              cols_, o.cols_);
}

void
Tensor::matmulAccumInto(const Tensor& o, Tensor& out) const
{
    if (cols_ != o.rows_)
        panic("Tensor::matmulAccumInto: inner dimensions ", cols_,
              " vs ", o.rows_);
    if (out.rows_ != rows_ || out.cols_ != o.cols_)
        panic("Tensor::matmulAccumInto: output must be ", rows_, "x",
              o.cols_);
    gemmAccum(data_.data(), o.data_.data(), out.data_.data(), rows_,
              cols_, o.cols_);
}

void
Tensor::matmulTransAAccumInto(const Tensor& o, Tensor& out) const
{
    // out (cols_ x o.cols_) += this^T (cols_ x rows_) * o.
    if (rows_ != o.rows_)
        panic("Tensor::matmulTransAAccumInto: row counts ", rows_,
              " vs ", o.rows_);
    if (out.rows_ != cols_ || out.cols_ != o.cols_)
        panic("Tensor::matmulTransAAccumInto: output must be ", cols_,
              "x", o.cols_);
    // out[k][j] = sum_i this[i][k] * o[i][j], i ascending: the same
    // per-element order as transpose().matmul(o), with no transpose
    // materialised and no product temporary.
    int n = o.cols_;
    for (int i = 0; i < rows_; ++i) {
        const float* arow = data_.data() +
            static_cast<std::size_t>(i) * cols_;
        const float* brow = o.data_.data() +
            static_cast<std::size_t>(i) * n;
        for (int k = 0; k < cols_; ++k) {
            float av = arow[k];
            float* orow = out.data_.data() +
                static_cast<std::size_t>(k) * n;
            for (int j = 0; j < n; ++j)
                orow[j] += av * brow[j];
        }
    }
}

void
Tensor::matmulTransBAccumInto(const Tensor& o, Tensor& out) const
{
    // out (rows_ x o.rows_) += this (rows_ x cols_) * o^T.
    if (cols_ != o.cols_)
        panic("Tensor::matmulTransBAccumInto: column counts ", cols_,
              " vs ", o.cols_);
    if (out.rows_ != rows_ || out.cols_ != o.rows_)
        panic("Tensor::matmulTransBAccumInto: output must be ", rows_,
              "x", o.rows_);
    // Row-by-row dot products; both operands stream along their
    // natural row-major layout. A single accumulator keeps the
    // j-ascending order of matmul(o.transpose()).
    for (int i = 0; i < rows_; ++i) {
        const float* arow = data_.data() +
            static_cast<std::size_t>(i) * cols_;
        float* orow = out.data_.data() +
            static_cast<std::size_t>(i) * o.rows_;
        for (int k = 0; k < o.rows_; ++k) {
            const float* brow = o.data_.data() +
                static_cast<std::size_t>(k) * o.cols_;
            float acc = 0.0f;
            for (int j = 0; j < cols_; ++j)
                acc += arow[j] * brow[j];
            orow[k] += acc;
        }
    }
}

Tensor
Tensor::matmulReference(const Tensor& o) const
{
    if (cols_ != o.rows_)
        panic("Tensor::matmulReference: inner dimensions ", cols_,
              " vs ", o.rows_);
    Tensor out(rows_, o.cols_);
    // The original scalar ikj loop with the per-element zero skip.
    for (int i = 0; i < rows_; ++i) {
        const float* arow = data_.data() +
            static_cast<std::size_t>(i) * cols_;
        float* orow = out.data_.data() +
            static_cast<std::size_t>(i) * o.cols_;
        for (int k = 0; k < cols_; ++k) {
            float a = arow[k];
            if (a == 0.0f)
                continue;
            const float* brow = o.data_.data() +
                static_cast<std::size_t>(k) * o.cols_;
            for (int j = 0; j < o.cols_; ++j)
                orow[j] += a * brow[j];
        }
    }
    return out;
}

Tensor
Tensor::transpose() const
{
    Tensor out(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            out.at(j, i) = at(i, j);
    return out;
}

Tensor
Tensor::operator+(const Tensor& o) const
{
    if (!sameShape(o))
        panic("Tensor::operator+: shape mismatch");
    Tensor out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += o.data_[i];
    return out;
}

Tensor
Tensor::operator-(const Tensor& o) const
{
    if (!sameShape(o))
        panic("Tensor::operator-: shape mismatch");
    Tensor out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] -= o.data_[i];
    return out;
}

Tensor
Tensor::operator*(const Tensor& o) const
{
    if (!sameShape(o))
        panic("Tensor::operator*: shape mismatch");
    Tensor out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] *= o.data_[i];
    return out;
}

Tensor&
Tensor::operator+=(const Tensor& o)
{
    if (!sameShape(o))
        panic("Tensor::operator+=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += o.data_[i];
    return *this;
}

Tensor&
Tensor::operator-=(const Tensor& o)
{
    if (!sameShape(o))
        panic("Tensor::operator-=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= o.data_[i];
    return *this;
}

Tensor
Tensor::operator*(float s) const
{
    Tensor out = *this;
    for (auto& v : out.data_)
        v *= s;
    return out;
}

Tensor&
Tensor::operator*=(float s)
{
    for (auto& v : data_)
        v *= s;
    return *this;
}

Tensor
Tensor::addRowBroadcast(const Tensor& row) const
{
    if (row.rows_ != 1 || row.cols_ != cols_)
        panic("Tensor::addRowBroadcast: bias must be 1x", cols_);
    Tensor out = *this;
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            out.at(i, j) += row.at(0, j);
    return out;
}

Tensor
Tensor::sumRows() const
{
    Tensor out(1, cols_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            out.at(0, j) += at(i, j);
    return out;
}

float
Tensor::sumAll() const
{
    float s = 0.0f;
    for (float v : data_)
        s += v;
    return s;
}

float
Tensor::meanAll() const
{
    if (data_.empty())
        fatal("Tensor::meanAll: empty tensor");
    return sumAll() / static_cast<float>(data_.size());
}

float
Tensor::normSq() const
{
    float s = 0.0f;
    for (float v : data_)
        s += v * v;
    return s;
}

Tensor
Tensor::rowCopy(int r) const
{
    if (r < 0 || r >= rows_)
        panic("Tensor::rowCopy: row out of range");
    Tensor out(1, cols_);
    for (int j = 0; j < cols_; ++j)
        out.at(0, j) = at(r, j);
    return out;
}

void
Tensor::setRow(int r, const Tensor& row)
{
    if (r < 0 || r >= rows_ || row.rows_ != 1 || row.cols_ != cols_)
        panic("Tensor::setRow: shape mismatch");
    for (int j = 0; j < cols_; ++j)
        at(r, j) = row.at(0, j);
}

void
Tensor::fillUniform(Rng& rng, float lo, float hi)
{
    for (auto& v : data_)
        v = static_cast<float>(rng.uniform(lo, hi));
}

void
Tensor::fillNormal(Rng& rng, float mean, float stddev)
{
    for (auto& v : data_)
        v = static_cast<float>(rng.normal(mean, stddev));
}

void
Tensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

float
Tensor::maxAbsDiff(const Tensor& o) const
{
    if (!sameShape(o))
        panic("Tensor::maxAbsDiff: shape mismatch");
    float m = 0.0f;
    for (std::size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::fabs(data_[i] - o.data_[i]));
    return m;
}

Tensor
concatCols(const Tensor& a, const Tensor& b)
{
    if (a.rows() != b.rows())
        panic("concatCols: row mismatch");
    Tensor out(a.rows(), a.cols() + b.cols());
    for (int i = 0; i < a.rows(); ++i) {
        for (int j = 0; j < a.cols(); ++j)
            out.at(i, j) = a.at(i, j);
        for (int j = 0; j < b.cols(); ++j)
            out.at(i, a.cols() + j) = b.at(i, j);
    }
    return out;
}

} // namespace ccsa
