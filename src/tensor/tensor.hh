/**
 * @file
 * A minimal dense float32 tensor (rank <= 2, row-major) that underpins
 * the from-scratch neural-network stack. The paper trained its models
 * with a GPU deep-learning framework; this repository substitutes a
 * self-contained CPU implementation with identical mathematics so the
 * full pipeline runs offline with no external dependencies.
 *
 * Storage comes in two modes. An *owned* tensor holds its floats in a
 * std::vector as always. A *borrowed* tensor (Tensor::borrowed) wraps
 * a span it does not own — the tape-free inference path hands out
 * TensorArena storage this way, so copying one costs a pointer, not a
 * heap allocation. Borrowed tensors are views: they must not outlive
 * their backing storage, and anything that escapes an InferenceScope
 * is deep-copied first via toOwned(). The public API is identical in
 * both modes.
 */

#ifndef CCSA_TENSOR_TENSOR_HH
#define CCSA_TENSOR_TENSOR_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/rng.hh"

namespace ccsa
{

/** Dense row-major matrix of float32; a 1xN tensor doubles as a vector. */
class Tensor
{
  public:
    /** Construct an empty (0x0) tensor. */
    Tensor() = default;

    /** Construct a rows x cols tensor filled with a constant. */
    Tensor(int rows, int cols, float fill = 0.0f);

    /**
     * Copies of owned tensors deep-copy (and count toward
     * tensorHeapAllocCount()); copies of borrowed tensors alias the
     * same span at pointer cost. Moves never allocate.
     */
    Tensor(const Tensor& o);
    Tensor& operator=(const Tensor& o);
    Tensor(Tensor&&) noexcept = default;
    Tensor& operator=(Tensor&&) noexcept = default;

    /** @return a rows x cols tensor of zeros. */
    static Tensor zeros(int rows, int cols) { return {rows, cols, 0.0f}; }

    /** @return a rows x cols tensor of ones. */
    static Tensor ones(int rows, int cols) { return {rows, cols, 1.0f}; }

    /** Build from a flat row-major buffer (size must be rows*cols). */
    static Tensor fromVector(const std::vector<float>& data,
                             int rows, int cols);

    /**
     * Wrap caller-owned storage (rows*cols floats, row-major) without
     * copying. The view is writable and carries no lifetime: the
     * storage must outlive every copy of the returned tensor. Used by
     * the inference arena; most callers never need this.
     */
    static Tensor borrowed(float* storage, int rows, int cols);

    /** @return whether this tensor is a non-owning view. */
    bool isBorrowed() const { return span_ != nullptr; }

    /**
     * Deep copy into owned storage — the escape hatch for results
     * that must outlive an InferenceScope. Owned tensors copy too,
     * so the result is always safe to retain.
     */
    Tensor toOwned() const;

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    std::size_t
    size() const
    {
        return static_cast<std::size_t>(rows_) * cols_;
    }

    bool empty() const { return size() == 0; }

    /** Mutable element access with bounds panic in debug paths. */
    float&
    at(int r, int c)
    {
        CCSA_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                    "Tensor::at index out of bounds");
        return data()[static_cast<std::size_t>(r) * cols_ + c];
    }

    float
    at(int r, int c) const
    {
        CCSA_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                    "Tensor::at index out of bounds");
        return data()[static_cast<std::size_t>(r) * cols_ + c];
    }

    float* data() { return span_ ? span_ : data_.data(); }
    const float* data() const { return span_ ? span_ : data_.data(); }

    /** @return true if shapes match. */
    bool
    sameShape(const Tensor& o) const
    {
        return rows_ == o.rows_ && cols_ == o.cols_;
    }

    /**
     * Matrix product (this: MxK, o: KxN) -> MxN.
     *
     * Backed by a blocked, unrolled kernel. The accumulation order
     * per output element is strictly ascending over the inner
     * dimension, so each output row is bitwise-identical whether it
     * is computed alone (1xK gemv) or as part of a larger batch —
     * the property the level-batched tree-LSTM parity relies on.
     */
    Tensor matmul(const Tensor& o) const;

    /**
     * No-alloc matmul: out = this * o. `out` must be preallocated to
     * rows() x o.cols(); its contents are overwritten. The serving
     * hot path uses this to reuse scratch buffers across calls.
     */
    void matmulInto(const Tensor& o, Tensor& out) const;

    /** Accumulating matmul: out += this * o (no temporaries). */
    void matmulAccumInto(const Tensor& o, Tensor& out) const;

    /**
     * out += transpose(this) * o without materialising the
     * transpose (this: MxK, o: MxN, out: KxN). Gradient-of-weights
     * path of ag::matmul.
     */
    void matmulTransAAccumInto(const Tensor& o, Tensor& out) const;

    /**
     * out += this * transpose(o) without materialising the
     * transpose (this: MxN, o: KxN, out: MxK). Gradient-of-inputs
     * path of ag::matmul.
     */
    void matmulTransBAccumInto(const Tensor& o, Tensor& out) const;

    /**
     * The pre-kernel scalar implementation (ikj with a per-element
     * zero skip), kept as the correctness oracle for kernel tests
     * and the old-vs-new microbenchmark.
     */
    Tensor matmulReference(const Tensor& o) const;

    /** @return the transpose. */
    Tensor transpose() const;

    /** Elementwise operations (shape-checked). */
    Tensor operator+(const Tensor& o) const;
    Tensor operator-(const Tensor& o) const;
    Tensor operator*(const Tensor& o) const;

    Tensor& operator+=(const Tensor& o);
    Tensor& operator-=(const Tensor& o);

    /** Scalar operations. */
    Tensor operator*(float s) const;
    Tensor& operator*=(float s);

    /** Add a 1xC row vector to every row of this NxC tensor. */
    Tensor addRowBroadcast(const Tensor& row) const;

    /** Sum over rows -> 1xC. */
    Tensor sumRows() const;

    /** Sum of all elements. */
    float sumAll() const;

    /** Mean of all elements (fatal if empty). */
    float meanAll() const;

    /** Squared Frobenius norm. */
    float normSq() const;

    /** Copy of row r as a 1xC tensor. */
    Tensor rowCopy(int r) const;

    /** Overwrite row r with a 1xC tensor. */
    void setRow(int r, const Tensor& row);

    /** Fill with U(lo, hi) samples. */
    void fillUniform(Rng& rng, float lo, float hi);

    /** Fill with N(mean, stddev) samples. */
    void fillNormal(Rng& rng, float mean, float stddev);

    /** Set all elements to a constant. */
    void fill(float v);

    /** Max absolute elementwise difference to another tensor. */
    float maxAbsDiff(const Tensor& o) const;

  private:
    int rows_ = 0;
    int cols_ = 0;
    float* span_ = nullptr;    // borrowed storage; owned when null
    std::vector<float> data_;  // owned storage (empty when borrowed)
};

/** Concatenate two tensors with equal rows along columns. */
Tensor concatCols(const Tensor& a, const Tensor& b);

/**
 * Process-wide count of owned-tensor heap allocations (constructions
 * and deep copies with a non-empty payload). The arena-reuse
 * regression tests pin warm inference iterations to a zero delta.
 */
std::uint64_t tensorHeapAllocCount();

} // namespace ccsa

#endif // CCSA_TENSOR_TENSOR_HH
