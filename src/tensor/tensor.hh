/**
 * @file
 * A minimal dense float32 tensor (rank <= 2, row-major) that underpins
 * the from-scratch neural-network stack. The paper trained its models
 * with a GPU deep-learning framework; this repository substitutes a
 * self-contained CPU implementation with identical mathematics so the
 * full pipeline runs offline with no external dependencies.
 */

#ifndef CCSA_TENSOR_TENSOR_HH
#define CCSA_TENSOR_TENSOR_HH

#include <vector>

#include "base/logging.hh"
#include "base/rng.hh"

namespace ccsa
{

/** Dense row-major matrix of float32; a 1xN tensor doubles as a vector. */
class Tensor
{
  public:
    /** Construct an empty (0x0) tensor. */
    Tensor() = default;

    /** Construct a rows x cols tensor filled with a constant. */
    Tensor(int rows, int cols, float fill = 0.0f);

    /** @return a rows x cols tensor of zeros. */
    static Tensor zeros(int rows, int cols) { return {rows, cols, 0.0f}; }

    /** @return a rows x cols tensor of ones. */
    static Tensor ones(int rows, int cols) { return {rows, cols, 1.0f}; }

    /** Build from a flat row-major buffer (size must be rows*cols). */
    static Tensor fromVector(const std::vector<float>& data,
                             int rows, int cols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /** Mutable element access with bounds panic in debug paths. */
    float&
    at(int r, int c)
    {
        return data_[static_cast<std::size_t>(r) * cols_ + c];
    }

    float
    at(int r, int c) const
    {
        return data_[static_cast<std::size_t>(r) * cols_ + c];
    }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    /** @return true if shapes match. */
    bool
    sameShape(const Tensor& o) const
    {
        return rows_ == o.rows_ && cols_ == o.cols_;
    }

    /**
     * Matrix product (this: MxK, o: KxN) -> MxN.
     *
     * Backed by a blocked, unrolled kernel. The accumulation order
     * per output element is strictly ascending over the inner
     * dimension, so each output row is bitwise-identical whether it
     * is computed alone (1xK gemv) or as part of a larger batch —
     * the property the level-batched tree-LSTM parity relies on.
     */
    Tensor matmul(const Tensor& o) const;

    /**
     * No-alloc matmul: out = this * o. `out` must be preallocated to
     * rows() x o.cols(); its contents are overwritten. The serving
     * hot path uses this to reuse scratch buffers across calls.
     */
    void matmulInto(const Tensor& o, Tensor& out) const;

    /** Accumulating matmul: out += this * o (no temporaries). */
    void matmulAccumInto(const Tensor& o, Tensor& out) const;

    /**
     * out += transpose(this) * o without materialising the
     * transpose (this: MxK, o: MxN, out: KxN). Gradient-of-weights
     * path of ag::matmul.
     */
    void matmulTransAAccumInto(const Tensor& o, Tensor& out) const;

    /**
     * out += this * transpose(o) without materialising the
     * transpose (this: MxN, o: KxN, out: MxK). Gradient-of-inputs
     * path of ag::matmul.
     */
    void matmulTransBAccumInto(const Tensor& o, Tensor& out) const;

    /**
     * The pre-kernel scalar implementation (ikj with a per-element
     * zero skip), kept as the correctness oracle for kernel tests
     * and the old-vs-new microbenchmark.
     */
    Tensor matmulReference(const Tensor& o) const;

    /** @return the transpose. */
    Tensor transpose() const;

    /** Elementwise operations (shape-checked). */
    Tensor operator+(const Tensor& o) const;
    Tensor operator-(const Tensor& o) const;
    Tensor operator*(const Tensor& o) const;

    Tensor& operator+=(const Tensor& o);
    Tensor& operator-=(const Tensor& o);

    /** Scalar operations. */
    Tensor operator*(float s) const;
    Tensor& operator*=(float s);

    /** Add a 1xC row vector to every row of this NxC tensor. */
    Tensor addRowBroadcast(const Tensor& row) const;

    /** Sum over rows -> 1xC. */
    Tensor sumRows() const;

    /** Sum of all elements. */
    float sumAll() const;

    /** Mean of all elements (fatal if empty). */
    float meanAll() const;

    /** Squared Frobenius norm. */
    float normSq() const;

    /** Copy of row r as a 1xC tensor. */
    Tensor rowCopy(int r) const;

    /** Overwrite row r with a 1xC tensor. */
    void setRow(int r, const Tensor& row);

    /** Fill with U(lo, hi) samples. */
    void fillUniform(Rng& rng, float lo, float hi);

    /** Fill with N(mean, stddev) samples. */
    void fillNormal(Rng& rng, float mean, float stddev);

    /** Set all elements to a constant. */
    void fill(float v);

    /** Max absolute elementwise difference to another tensor. */
    float maxAbsDiff(const Tensor& o) const;

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<float> data_;
};

/** Concatenate two tensors with equal rows along columns. */
Tensor concatCols(const Tensor& a, const Tensor& b);

} // namespace ccsa

#endif // CCSA_TENSOR_TENSOR_HH
