#include "viz/tsne.hh"

#include <cmath>
#include <vector>

#include "base/logging.hh"

namespace ccsa
{

namespace
{

/** Squared Euclidean distances between all row pairs. */
std::vector<double>
pairwiseSqDist(const Tensor& x)
{
    int n = x.rows();
    std::vector<double> d(static_cast<std::size_t>(n) * n, 0.0);
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            double s = 0.0;
            for (int k = 0; k < x.cols(); ++k) {
                double diff = x.at(i, k) - x.at(j, k);
                s += diff * diff;
            }
            d[static_cast<std::size_t>(i) * n + j] = s;
            d[static_cast<std::size_t>(j) * n + i] = s;
        }
    }
    return d;
}

/**
 * Row-wise conditional probabilities with per-point bandwidth chosen
 * by binary search to match the target perplexity.
 */
std::vector<double>
affinities(const std::vector<double>& d2, int n, double perplexity)
{
    std::vector<double> p(d2.size(), 0.0);
    double log_perp = std::log(std::max(perplexity, 2.0));
    for (int i = 0; i < n; ++i) {
        double beta = 1.0, beta_lo = 0.0, beta_hi = 1e18;
        for (int iter = 0; iter < 60; ++iter) {
            double sum = 0.0, sum_dp = 0.0;
            for (int j = 0; j < n; ++j) {
                if (j == i)
                    continue;
                double e = std::exp(
                    -d2[static_cast<std::size_t>(i) * n + j] * beta);
                sum += e;
                sum_dp += d2[static_cast<std::size_t>(i) * n + j] * e;
            }
            if (sum <= 0.0)
                break;
            double entropy = std::log(sum) + beta * sum_dp / sum;
            if (std::fabs(entropy - log_perp) < 1e-4)
                break;
            if (entropy > log_perp) {
                beta_lo = beta;
                beta = beta_hi > 1e17 ? beta * 2 : (beta + beta_hi) / 2;
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2;
            }
        }
        double sum = 0.0;
        for (int j = 0; j < n; ++j)
            if (j != i)
                sum += std::exp(
                    -d2[static_cast<std::size_t>(i) * n + j] * beta);
        for (int j = 0; j < n; ++j) {
            if (j == i || sum <= 0.0)
                continue;
            p[static_cast<std::size_t>(i) * n + j] =
                std::exp(-d2[static_cast<std::size_t>(i) * n + j] *
                         beta) / sum;
        }
    }
    return p;
}

} // namespace

Tensor
tsne(const Tensor& points, const TsneConfig& cfg)
{
    int n = points.rows();
    if (n < 3)
        fatal("tsne: need at least 3 points");

    auto d2 = pairwiseSqDist(points);
    auto p_cond = affinities(d2, n, cfg.perplexity);

    // Symmetrise: p_ij = (p_j|i + p_i|j) / 2n, floored for stability.
    std::vector<double> p(p_cond.size(), 0.0);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) {
            std::size_t ij = static_cast<std::size_t>(i) * n + j;
            std::size_t ji = static_cast<std::size_t>(j) * n + i;
            p[ij] = std::max((p_cond[ij] + p_cond[ji]) / (2.0 * n),
                             1e-12);
        }

    Rng rng(cfg.seed);
    Tensor y(n, 2);
    y.fillNormal(rng, 0.0f, 1e-2f);
    Tensor velocity(n, 2);

    std::vector<double> q(p.size(), 0.0);
    for (int iter = 0; iter < cfg.iterations; ++iter) {
        double exaggeration = iter < cfg.exaggerationIters
            ? cfg.earlyExaggeration : 1.0;
        double momentum = iter < cfg.exaggerationIters
            ? cfg.momentumStart : cfg.momentumFinal;

        // Student-t affinities in the embedding.
        double q_sum = 0.0;
        for (int i = 0; i < n; ++i) {
            for (int j = i + 1; j < n; ++j) {
                double dy0 = y.at(i, 0) - y.at(j, 0);
                double dy1 = y.at(i, 1) - y.at(j, 1);
                double t = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
                q[static_cast<std::size_t>(i) * n + j] = t;
                q[static_cast<std::size_t>(j) * n + i] = t;
                q_sum += 2.0 * t;
            }
        }

        for (int i = 0; i < n; ++i) {
            double g0 = 0.0, g1 = 0.0;
            for (int j = 0; j < n; ++j) {
                if (j == i)
                    continue;
                std::size_t ij = static_cast<std::size_t>(i) * n + j;
                double q_ij = std::max(q[ij] / q_sum, 1e-12);
                double mult = (exaggeration * p[ij] - q_ij) * q[ij];
                g0 += mult * (y.at(i, 0) - y.at(j, 0));
                g1 += mult * (y.at(i, 1) - y.at(j, 1));
            }
            velocity.at(i, 0) = static_cast<float>(
                momentum * velocity.at(i, 0) -
                cfg.learningRate * 4.0 * g0);
            velocity.at(i, 1) = static_cast<float>(
                momentum * velocity.at(i, 1) -
                cfg.learningRate * 4.0 * g1);
        }
        for (int i = 0; i < n; ++i) {
            y.at(i, 0) += velocity.at(i, 0);
            y.at(i, 1) += velocity.at(i, 1);
        }
    }
    return y;
}

double
separationRatio(const Tensor& embedding, const std::vector<int>& labels)
{
    if (static_cast<int>(labels.size()) != embedding.rows())
        fatal("separationRatio: label count mismatch");
    double intra = 0.0, inter = 0.0;
    std::size_t n_intra = 0, n_inter = 0;
    for (int i = 0; i < embedding.rows(); ++i) {
        for (int j = i + 1; j < embedding.rows(); ++j) {
            double d0 = embedding.at(i, 0) - embedding.at(j, 0);
            double d1 = embedding.at(i, 1) - embedding.at(j, 1);
            double d = std::sqrt(d0 * d0 + d1 * d1);
            if (labels[i] == labels[j]) {
                intra += d;
                ++n_intra;
            } else {
                inter += d;
                ++n_inter;
            }
        }
    }
    if (n_intra == 0 || n_inter == 0)
        return 0.0;
    return (inter / static_cast<double>(n_inter)) /
        std::max(intra / static_cast<double>(n_intra), 1e-12);
}

} // namespace ccsa
