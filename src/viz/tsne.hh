/**
 * @file
 * Exact t-distributed Stochastic Neighbor Embedding (van der Maaten &
 * Hinton 2008), used to regenerate Figure 7: 2-D projections of the
 * learned node embeddings and code representations. O(N^2) — ample
 * for the few hundred points the figure plots.
 */

#ifndef CCSA_VIZ_TSNE_HH
#define CCSA_VIZ_TSNE_HH

#include "base/rng.hh"
#include "tensor/tensor.hh"

namespace ccsa
{

/** t-SNE hyper-parameters. */
struct TsneConfig
{
    double perplexity = 15.0;
    int iterations = 400;
    double learningRate = 100.0;
    double earlyExaggeration = 4.0;
    int exaggerationIters = 80;
    double momentumStart = 0.5;
    double momentumFinal = 0.8;
    std::uint64_t seed = 7;
};

/**
 * Project high-dimensional rows to 2-D.
 * @param points N x D input matrix (one row per point).
 * @param cfg hyper-parameters.
 * @return N x 2 embedding.
 */
Tensor tsne(const Tensor& points, const TsneConfig& cfg = {});

/**
 * Cluster-separation diagnostic for a labelled 2-D embedding: the
 * ratio of mean inter-class to mean intra-class pairwise distance
 * (> 1 means classes are visibly separated).
 */
double separationRatio(const Tensor& embedding,
                       const std::vector<int>& labels);

} // namespace ccsa

#endif // CCSA_VIZ_TSNE_HH
