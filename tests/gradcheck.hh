/**
 * @file
 * Numerical gradient checking shared by the autograd and layer tests:
 * compares reverse-mode gradients against central finite differences
 * on every element of every leaf.
 */

#ifndef CCSA_TESTS_GRADCHECK_HH
#define CCSA_TESTS_GRADCHECK_HH

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/autograd.hh"

namespace ccsa
{
namespace testutil
{

/**
 * Check d(loss)/d(leaf) for every leaf against finite differences.
 * @param leaves trainable inputs of the graph.
 * @param loss_fn rebuilds the scalar loss from current leaf values.
 * @param eps finite-difference step.
 * @param tol absolute tolerance on the gradient mismatch.
 */
inline void
expectGradientsMatch(std::vector<ag::Var>& leaves,
                     const std::function<ag::Var()>& loss_fn,
                     float eps = 1e-3f, float tol = 2e-2f)
{
    ag::Var loss = loss_fn();
    for (auto& leaf : leaves)
        leaf.zeroGrad();
    ag::backward(loss);

    for (std::size_t li = 0; li < leaves.size(); ++li) {
        ag::Var& leaf = leaves[li];
        Tensor analytic = leaf.grad();
        Tensor& value = leaf.mutableValue();
        for (int r = 0; r < value.rows(); ++r) {
            for (int c = 0; c < value.cols(); ++c) {
                float saved = value.at(r, c);
                value.at(r, c) = saved + eps;
                float up = loss_fn().value().at(0, 0);
                value.at(r, c) = saved - eps;
                float down = loss_fn().value().at(0, 0);
                value.at(r, c) = saved;
                float numeric = (up - down) / (2.0f * eps);
                EXPECT_NEAR(analytic.at(r, c), numeric, tol)
                    << "leaf " << li << " element (" << r << "," << c
                    << ")";
            }
        }
    }
}

/** Fill a tensor with a deterministic, well-conditioned pattern. */
inline Tensor
patterned(int rows, int cols, float scale = 0.1f, float phase = 0.0f)
{
    Tensor t(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            t.at(r, c) = scale *
                std::sin(0.7f * static_cast<float>(r) +
                         1.3f * static_cast<float>(c) + phase);
    return t;
}

} // namespace testutil
} // namespace ccsa

#endif // CCSA_TESTS_GRADCHECK_HH
