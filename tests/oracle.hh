/**
 * @file
 * The per-pair probability oracle the batched serving paths are
 * pinned against: encode both trees independently, classify the
 * concatenated latents, sigmoid — exactly the computation the
 * retired ComparativePredictor::probFirstSlower shim performed.
 * It lives here (tests; also included by bench/micro_ops.cc as the
 * unbatched baseline) rather than in the library so production
 * callers cannot reach a one-pair-at-a-time path, while every suite
 * pins against the SAME reference implementation.
 */

#ifndef CCSA_TESTS_ORACLE_HH
#define CCSA_TESTS_ORACLE_HH

#include <cmath>

#include "model/predictor.hh"

namespace ccsa
{

inline double
perPairProb(const ComparativePredictor& model, const Ast& first,
            const Ast& second)
{
    ag::Var z = model.logitFromEncodings(model.encode(first),
                                         model.encode(second));
    return 1.0 / (1.0 + std::exp(-z.value().at(0, 0)));
}

} // namespace ccsa

#endif // CCSA_TESTS_ORACLE_HH
