/**
 * @file
 * Tests for the admission-control + tracing subsystems: the
 * per-tenant token-bucket AdmissionController (driven by a manual
 * clock — no sleeps), the two-lane deadline-aware Coalescer, the
 * TraceRecorder span sink and its chrome-trace export, and their
 * integration into AsyncServer / ShardedServer. The pinned
 * contracts: quotas and priorities never change a result (futures
 * stay bitwise-identical to the synchronous Engine, at 1/2/4/8
 * shards), a dry bucket answers with ResourceExhausted and a
 * per-tenant rejection counter, interactive requests flush ahead of
 * held-over batch-lane traffic, and every successful traced request
 * leaves a complete admission->score span chain.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "frontend/parser.hh"
#include "serve/admission/admission_controller.hh"
#include "serve/async_server.hh"
#include "serve/coalesce.hh"
#include "serve/sharded_server.hh"
#include "serve/trace/trace_recorder.hh"

namespace ccsa
{
namespace
{

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::seconds;
using Clock = std::chrono::steady_clock;

Ast
tinyProgram(int loops)
{
    std::string src = "int main() {\n int n;\n cin >> n;\n";
    for (int i = 0; i < loops; ++i) {
        std::string v = "i" + std::to_string(i);
        src += " for (int " + v + " = 0; " + v + " < n; " + v +
            "++) { int z" + std::to_string(i) + " = " + v + "; }\n";
    }
    src += " return 0;\n}\n";
    return parseAndPrune(src);
}

Engine::Options
tinyOptions()
{
    return Engine::Options()
        .withEmbedDim(8)
        .withHiddenDim(8)
        .withSeed(7)
        .withThreads(1);
}

// ---------------------------------------------- AdmissionController

TEST(AdmissionController, UnquotedTenantsAreAlwaysAdmitted)
{
    AdmissionController ac;
    auto t0 = Clock::now();
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(ac.admitAt("anyone", 1000, t0).isOk());
    EXPECT_FALSE(ac.hasQuota("anyone"));

    auto rows = ac.stats();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].tenant, "anyone");
    EXPECT_EQ(rows[0].admitted, 100u);
    EXPECT_EQ(rows[0].admittedPairs, 100000u);
    EXPECT_EQ(rows[0].rejected, 0u);
}

TEST(AdmissionController, TokenBucketRefillsAtTheConfiguredRate)
{
    AdmissionController ac;
    ac.setQuota("t", {/*pairsPerSec=*/10.0, /*burst=*/5.0});
    EXPECT_TRUE(ac.hasQuota("t"));

    // The bucket starts full: the whole burst is admittable at once;
    // the first charge also anchors the refill epoch.
    auto t0 = Clock::now();
    EXPECT_TRUE(ac.admitAt("t", 5, t0).isOk());
    Status dry = ac.admitAt("t", 1, t0);
    EXPECT_FALSE(dry.isOk());
    EXPECT_EQ(dry.code(), StatusCode::ResourceExhausted);

    // 100 ms at 10 pairs/s refills exactly one token.
    auto t1 = t0 + milliseconds(100);
    EXPECT_TRUE(ac.admitAt("t", 1, t1).isOk());
    EXPECT_FALSE(ac.admitAt("t", 1, t1).isOk());

    // A long idle stretch refills to the burst ceiling, not beyond.
    auto t2 = t1 + seconds(60);
    EXPECT_TRUE(ac.admitAt("t", 5, t2).isOk());
    EXPECT_FALSE(ac.admitAt("t", 1, t2).isOk());
}

TEST(AdmissionController, RequestLargerThanBurstIsNeverAdmitted)
{
    AdmissionController ac;
    ac.setQuota("t", {1000.0, 4.0});
    auto t0 = Clock::now();
    // Even a brand-new full bucket cannot cover 5 pairs: the burst
    // is the hard ceiling on a single request's cost.
    EXPECT_EQ(ac.admitAt("t", 5, t0).code(),
              StatusCode::ResourceExhausted);
    // ...and waiting doesn't help.
    EXPECT_EQ(ac.admitAt("t", 5, t0 + seconds(10)).code(),
              StatusCode::ResourceExhausted);
    // A burst-sized request is fine.
    EXPECT_TRUE(ac.admitAt("t", 4, t0 + seconds(10)).isOk());
}

TEST(AdmissionController, ZeroRateIsAHardCap)
{
    AdmissionController ac;
    ac.setQuota("capped", {0.0, 3.0});
    auto t0 = Clock::now();
    EXPECT_TRUE(ac.admitAt("capped", 3, t0).isOk());
    // No refill ever happens at rate 0, however long the wait.
    EXPECT_FALSE(ac.admitAt("capped", 1, t0 + seconds(3600)).isOk());
}

TEST(AdmissionController, ClearQuotaRestoresUnlimitedAdmission)
{
    AdmissionController ac;
    ac.setQuota("t", {0.0, 1.0});
    auto t0 = Clock::now();
    EXPECT_TRUE(ac.admitAt("t", 1, t0).isOk());
    EXPECT_FALSE(ac.admitAt("t", 1, t0).isOk());

    ac.clearQuota("t");
    EXPECT_FALSE(ac.hasQuota("t"));
    EXPECT_TRUE(ac.admitAt("t", 1000, t0).isOk());

    // Counters survived the quota change.
    auto rows = ac.stats();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].admitted, 2u);
    EXPECT_EQ(rows[0].rejected, 1u);
}

TEST(AdmissionController, StatsRowsAreSortedByTenant)
{
    AdmissionController ac;
    auto t0 = Clock::now();
    ac.admitAt("zeta", 1, t0);
    ac.admitAt("alpha", 1, t0);
    ac.setQuota("mid", {1.0, 1.0});
    auto rows = ac.stats();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].tenant, "alpha");
    EXPECT_EQ(rows[1].tenant, "mid");
    EXPECT_EQ(rows[2].tenant, "zeta");
}

// ----------------------------------------------- two-lane Coalescer

/** Minimal request shape the Coalescer template needs. */
struct FakeRequest
{
    int id = 0;
    std::vector<Engine::PairRequest> pairs;
    std::shared_ptr<const ModelVersion> version;
    Priority priority = Priority::kInteractive;
    Clock::time_point enqueued;
    Clock::time_point dequeued;
};

FakeRequest
fakeRequest(int id, Priority priority, Clock::time_point enqueued,
            std::size_t pairCount = 1)
{
    FakeRequest r;
    r.id = id;
    r.pairs.resize(pairCount);
    r.priority = priority;
    r.enqueued = enqueued;
    return r;
}

TEST(Coalescer, ExpiredInteractiveFlushesAloneBatchLaneHeldOver)
{
    BoundedQueue<FakeRequest> queue(8);
    // Batch lane effectively never expires on its own here.
    Coalescer<FakeRequest> coalescer(queue, /*maxBatchSize=*/100,
                                     /*interactiveDelay=*/
                                     microseconds(1000),
                                     /*batchDelay=*/seconds(60));
    auto now = Clock::now();
    queue.push(fakeRequest(1, Priority::kBatch, now));
    queue.push(fakeRequest(2, Priority::kBatch, now));
    // Already past its deadline: forces an immediate interactive
    // flush once coalesced, without this test sleeping.
    queue.push(fakeRequest(3, Priority::kInteractive,
                           now - milliseconds(10)));

    auto batch = coalescer.next();
    ASSERT_TRUE(batch.has_value());
    ASSERT_EQ(batch->requests.size(), 1u);
    EXPECT_EQ(batch->requests[0].id, 3);
    EXPECT_EQ(batch->pairCount, 1u);
    // The batch-class members stay pending inside the coalescer.
    EXPECT_EQ(coalescer.pendingRequests(), 2u);
    // The pop stamped the queue->coalesce boundary.
    EXPECT_GE(batch->requests[0].dequeued.time_since_epoch().count(),
              now.time_since_epoch().count());

    // Close-and-drain flushes the held-over batch lane...
    queue.close();
    auto drained = coalescer.next();
    ASSERT_TRUE(drained.has_value());
    ASSERT_EQ(drained->requests.size(), 2u);
    EXPECT_EQ(drained->requests[0].id, 1);
    EXPECT_EQ(drained->requests[1].id, 2);
    EXPECT_EQ(coalescer.pendingRequests(), 0u);

    // ...and only then does the loop see the clean-exit signal.
    EXPECT_FALSE(coalescer.next().has_value());
}

TEST(Coalescer, FullBatchFlushesBothLanesTogether)
{
    BoundedQueue<FakeRequest> queue(8);
    Coalescer<FakeRequest> coalescer(queue, /*maxBatchSize=*/3,
                                     microseconds(1000),
                                     seconds(60));
    auto now = Clock::now();
    queue.push(fakeRequest(1, Priority::kBatch, now));
    queue.push(fakeRequest(2, Priority::kInteractive, now));
    queue.push(fakeRequest(3, Priority::kBatch, now));

    // Three pending pairs hit maxBatchSize: everything flushes, in
    // submission order, whichever lane it rode in on.
    auto batch = coalescer.next();
    ASSERT_TRUE(batch.has_value());
    ASSERT_EQ(batch->requests.size(), 3u);
    EXPECT_EQ(batch->requests[0].id, 1);
    EXPECT_EQ(batch->requests[1].id, 2);
    EXPECT_EQ(batch->requests[2].id, 3);
    EXPECT_EQ(coalescer.pendingRequests(), 0u);
}

TEST(Coalescer, ExpiredBatchLaneTakesEverythingWithIt)
{
    BoundedQueue<FakeRequest> queue(8);
    Coalescer<FakeRequest> coalescer(queue, /*maxBatchSize=*/100,
                                     microseconds(500),
                                     /*batchDelay=*/microseconds(600));
    auto now = Clock::now();
    // BOTH lanes already past their budgets: one flush serves all.
    queue.push(fakeRequest(1, Priority::kBatch,
                           now - milliseconds(10)));
    queue.push(fakeRequest(2, Priority::kInteractive,
                           now - milliseconds(10)));

    auto batch = coalescer.next();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->requests.size(), 2u);
    EXPECT_EQ(coalescer.pendingRequests(), 0u);
}

// -------------------------------------------------- TraceRecorder

TEST(TraceRecorder, RecordsSpansAndClampsTimestamps)
{
    TraceRecorder trace;
    auto now = Clock::now();
    std::uint64_t chain = trace.nextChain();
    EXPECT_NE(chain, 0u); // 0 is reserved for "untraced"

    // end < start clamps to a zero-duration span; a start before
    // the recorder epoch clamps forward to it.
    trace.record(chain, TracePhase::Queue, now + microseconds(200),
                 now + microseconds(100), 3, "tenant-a", 7);
    trace.record(chain, TracePhase::Admission,
                 now - seconds(3600), now, 0, "tenant-a", 7);

    auto spans = trace.spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].durUs, 0u);
    EXPECT_EQ(spans[0].lane, 3u);
    EXPECT_EQ(spans[0].pairs, 7u);
    EXPECT_EQ(spans[0].tenant, "tenant-a");
    EXPECT_EQ(spans[1].startUs, 0u); // clamped to the epoch
}

TEST(TraceRecorder, BoundedBufferCountsDroppedSpans)
{
    TraceRecorder trace(/*maxSpans=*/2);
    auto now = Clock::now();
    for (int i = 0; i < 5; ++i)
        trace.record(trace.nextChain(), TracePhase::Score, now, now,
                     0, "", 1);
    EXPECT_EQ(trace.spanCount(), 2u);
    EXPECT_EQ(trace.droppedSpans(), 3u);

    trace.clear();
    EXPECT_EQ(trace.spanCount(), 0u);
    EXPECT_EQ(trace.droppedSpans(), 0u);
}

TEST(TraceRecorder, WriteJsonEmitsChromeTraceEvents)
{
    TraceRecorder trace;
    auto now = Clock::now();
    std::uint64_t chain = trace.nextChain();
    trace.record(chain, TracePhase::Encode, now,
                 now + microseconds(40), 1, "quote\"me", 2);

    std::ostringstream out;
    trace.writeJson(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"encode\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
    // Tenant names are JSON-escaped.
    EXPECT_NE(json.find("quote\\\"me"), std::string::npos);
    EXPECT_EQ(json.find("quote\"me"), std::string::npos);
}

// ------------------------------------------- AsyncServer admission

TEST(AsyncServerAdmission, DryBucketResolvesResourceExhausted)
{
    AdmissionController ac;
    ac.setQuota("flood", {/*pairsPerSec=*/0.0, /*burst=*/1.0});
    AsyncServer server(tinyOptions(),
                       AsyncServer::Options().withAdmission(&ac));
    Ast a = tinyProgram(1), b = tinyProgram(2);

    SubmitOptions asFlood = SubmitOptions().withTenant("flood");
    auto ok = server.submitCompare(asFlood, a, b);
    auto rejected = server.submitCompare(asFlood, a, b);
    // Unquoted tenants ride through untouched.
    auto other = server.submitCompare(a, b);

    EXPECT_TRUE(ok.get().isOk());
    Result<double> r = rejected.get();
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), StatusCode::ResourceExhausted);
    EXPECT_TRUE(other.get().isOk());

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.requestsRejectedQuota, 1u);
    EXPECT_EQ(stats.requestsRejected, 1u);
    EXPECT_EQ(stats.requestsSubmitted, 2u);

    // Per-tenant rows: the flood tenant shows its rejection, the
    // default tenant does not.
    ASSERT_EQ(stats.tenants.size(), 2u);
    EXPECT_EQ(stats.tenants[0].tenant, "");
    EXPECT_EQ(stats.tenants[0].rejectedQuota, 0u);
    EXPECT_EQ(stats.tenants[0].completed, 1u);
    EXPECT_EQ(stats.tenants[1].tenant, "flood");
    EXPECT_EQ(stats.tenants[1].submitted, 1u);
    EXPECT_EQ(stats.tenants[1].completed, 1u);
    EXPECT_EQ(stats.tenants[1].rejectedQuota, 1u);
    EXPECT_GT(stats.tenants[1].latencyUs.count(), 0u);
}

TEST(AsyncServerAdmission, RejectionSplitAttributesEveryRejection)
{
    // Paused batcher + capacity-1 queue: the second trySubmit is a
    // deterministic load-shed.
    AsyncServer server(tinyOptions(), AsyncServer::Options()
                                          .withQueueCapacity(1)
                                          .withStartPaused(true));
    Ast a = tinyProgram(1), b = tinyProgram(2);
    auto accepted = server.trySubmitCompare(a, b);
    ASSERT_TRUE(accepted.has_value());
    EXPECT_FALSE(server.trySubmitCompare(a, b).has_value());

    ServerStats mid = server.stats();
    EXPECT_EQ(mid.requestsRejectedShed, 1u);
    EXPECT_EQ(mid.requestsRejectedShutdown, 0u);
    EXPECT_EQ(mid.requestsRejectedQuota, 0u);
    EXPECT_EQ(mid.requestsRejected, 1u);

    server.shutdown();
    EXPECT_TRUE(accepted->get().isOk());
    auto late = server.submitCompare(a, b);
    EXPECT_EQ(late.get().status().code(), StatusCode::Unavailable);

    ServerStats done = server.stats();
    EXPECT_EQ(done.requestsRejectedShed, 1u);
    EXPECT_EQ(done.requestsRejectedShutdown, 1u);
    EXPECT_EQ(done.requestsRejected, 2u);
}

TEST(AsyncServerAdmission, PrioritiesNeverChangeResults)
{
    Engine reference(tinyOptions());
    AsyncServer server(tinyOptions());

    std::vector<Ast> pool;
    for (int i = 1; i <= 6; ++i)
        pool.push_back(tinyProgram(i));
    std::vector<Engine::PairRequest> pairs;
    for (std::size_t i = 0; i + 1 < pool.size(); ++i)
        pairs.push_back({&pool[i], &pool[i + 1]});
    std::vector<double> expected =
        reference.compareMany(pairs).value();

    // The same pairs, one request each, alternating lanes and
    // tenants: scheduling may reorder and regroup them, but every
    // future must match the synchronous engine bitwise.
    std::vector<std::future<Result<double>>> futures;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        SubmitOptions opts =
            SubmitOptions()
                .withTenant(i % 2 == 0 ? "even" : "odd")
                .withPriority(i % 2 == 0 ? Priority::kInteractive
                                         : Priority::kBatch);
        futures.push_back(server.submitCompare(
            opts, *pairs[i].first, *pairs[i].second));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
        Result<double> r = futures[i].get();
        ASSERT_TRUE(r.isOk());
        EXPECT_EQ(r.value(), expected[i]) << "pair " << i;
    }
}

TEST(AsyncServerAdmission, DeadlineFlushServesInteractiveFirst)
{
    // Deterministic schedule: stage everything while paused, then
    // start. The batch lane's budget (60 s) cannot expire within
    // the test, so only the interactive deadline can trigger the
    // first flush.
    AsyncServer server(
        tinyOptions(),
        AsyncServer::Options()
            .withStartPaused(true)
            .withMaxBatchSize(1000)
            .withMaxBatchDelay(milliseconds(1))
            .withMaxBatchClassDelay(seconds(60)));
    Ast a = tinyProgram(1), b = tinyProgram(2);

    SubmitOptions background =
        SubmitOptions().withPriority(Priority::kBatch);
    std::vector<std::future<Result<double>>> held;
    for (int i = 0; i < 3; ++i)
        held.push_back(server.submitCompare(background, a, b));
    auto urgent = server.submitCompare(
        SubmitOptions().withPriority(Priority::kInteractive), a, b);

    server.start();
    // The interactive request is answered promptly...
    ASSERT_EQ(urgent.wait_for(seconds(30)),
              std::future_status::ready);
    EXPECT_TRUE(urgent.get().isOk());
    // ...while the batch lane is still held over, unanswered.
    for (auto& f : held)
        EXPECT_EQ(f.wait_for(seconds(0)),
                  std::future_status::timeout);

    // Shutdown drains the held-over lane: every future resolves.
    server.shutdown();
    for (auto& f : held)
        EXPECT_TRUE(f.get().isOk());

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.requestsCompleted, 4u);
    // At least two flushes: the early interactive one and the drain.
    EXPECT_GE(stats.batches, 2u);
}

TEST(AsyncServerAdmission, TracedRequestsLeaveCompleteChains)
{
    TraceRecorder trace;
    AsyncServer server(tinyOptions(),
                       AsyncServer::Options().withTrace(&trace));
    Ast a = tinyProgram(1), b = tinyProgram(2);

    constexpr int kRequests = 4;
    std::vector<std::future<Result<double>>> futures;
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(server.submitCompare(a, b));
    for (auto& f : futures)
        ASSERT_TRUE(f.get().isOk());
    server.shutdown();

    // Every successful request leaves exactly one span per phase,
    // each phase exactly once per chain, timestamps contiguous.
    auto spans = trace.spans();
    ASSERT_EQ(spans.size(), kRequests * kTracePhases);
    std::map<std::uint64_t, std::map<TracePhase, std::uint64_t>>
        chains;
    for (const auto& s : spans) {
        EXPECT_NE(s.chain, 0u);
        EXPECT_TRUE(
            chains[s.chain].emplace(s.phase, s.startUs).second)
            << "duplicate phase in chain " << s.chain;
    }
    ASSERT_EQ(chains.size(), static_cast<std::size_t>(kRequests));
    for (const auto& [chain, phases] : chains) {
        ASSERT_EQ(phases.size(), kTracePhases);
        EXPECT_LE(phases.at(TracePhase::Admission),
                  phases.at(TracePhase::Queue));
        EXPECT_LE(phases.at(TracePhase::Queue),
                  phases.at(TracePhase::Coalesce));
        EXPECT_LE(phases.at(TracePhase::Coalesce),
                  phases.at(TracePhase::Encode));
        EXPECT_LE(phases.at(TracePhase::Encode),
                  phases.at(TracePhase::Score));
    }

    // Failed submissions leave NO spans.
    AsyncServer second(tinyOptions(),
                       AsyncServer::Options().withTrace(&trace));
    auto bad = second.submitCompare("no-such-model", a, b);
    EXPECT_FALSE(bad.get().isOk());
    EXPECT_EQ(trace.spans().size(), spans.size());
}

// ------------------------------------------ ShardedServer admission

TEST(ShardedServerAdmission, QuotaRejectionAndTenantRows)
{
    AdmissionController ac;
    ac.setQuota("noisy", {0.0, 2.0});
    ShardedServer server(tinyOptions(), ShardedServer::Options()
                                            .withNumShards(2)
                                            .withAdmission(&ac));
    Ast a = tinyProgram(1), b = tinyProgram(2);

    SubmitOptions asNoisy = SubmitOptions().withTenant("noisy");
    auto ok1 = server.submitCompare(asNoisy, a, b);
    auto ok2 = server.submitCompare(asNoisy, a, b);
    auto rejected = server.submitCompare(asNoisy, a, b);
    auto other = server.submitCompare(a, b);

    EXPECT_TRUE(ok1.get().isOk());
    EXPECT_TRUE(ok2.get().isOk());
    EXPECT_EQ(rejected.get().status().code(),
              StatusCode::ResourceExhausted);
    EXPECT_TRUE(other.get().isOk());

    ShardedServerStats stats = server.stats();
    EXPECT_EQ(stats.aggregate.requestsRejectedQuota, 1u);
    EXPECT_EQ(stats.aggregate.requestsRejected, 1u);
    EXPECT_EQ(stats.aggregate.requestsSubmitted, 3u);
    ASSERT_EQ(stats.aggregate.tenants.size(), 2u);
    EXPECT_EQ(stats.aggregate.tenants[0].tenant, "");
    EXPECT_EQ(stats.aggregate.tenants[1].tenant, "noisy");
    EXPECT_EQ(stats.aggregate.tenants[1].submitted, 2u);
    EXPECT_EQ(stats.aggregate.tenants[1].completed, 2u);
    EXPECT_EQ(stats.aggregate.tenants[1].rejectedQuota, 1u);
    EXPECT_GT(stats.aggregate.tenants[1].latencyUs.count(), 0u);
}

TEST(ShardedServerAdmission, PriorityParityAcrossShardCounts)
{
    Engine reference(tinyOptions());
    std::vector<Ast> pool;
    for (int i = 1; i <= 6; ++i)
        pool.push_back(tinyProgram(i));
    std::vector<Engine::PairRequest> pairs;
    for (std::size_t i = 0; i + 1 < pool.size(); ++i)
        pairs.push_back({&pool[i], &pool[i + 1]});
    std::vector<double> expectedEach =
        reference.compareMany(pairs).value();

    for (std::size_t shards : {1u, 2u, 4u, 8u}) {
        ShardedServer server(
            tinyOptions(),
            ShardedServer::Options().withNumShards(shards));
        // A split multi-pair request under batch priority...
        auto many = server.submitCompareMany(
            SubmitOptions().withPriority(Priority::kBatch), pairs);
        // ...and single-pair requests under mixed lanes.
        std::vector<std::future<Result<double>>> singles;
        for (std::size_t i = 0; i < pairs.size(); ++i)
            singles.push_back(server.submitCompare(
                SubmitOptions().withPriority(
                    i % 2 == 0 ? Priority::kInteractive
                               : Priority::kBatch),
                *pairs[i].first, *pairs[i].second));

        Result<std::vector<double>> r = many.get();
        ASSERT_TRUE(r.isOk());
        ASSERT_EQ(r.value().size(), expectedEach.size());
        for (std::size_t i = 0; i < expectedEach.size(); ++i) {
            EXPECT_EQ(r.value()[i], expectedEach[i])
                << shards << " shards, pair " << i;
            Result<double> s = singles[i].get();
            ASSERT_TRUE(s.isOk());
            EXPECT_EQ(s.value(), expectedEach[i])
                << shards << " shards, single " << i;
        }
    }
}

TEST(ShardedServerAdmission, SlicesLeaveCompleteTraceChains)
{
    TraceRecorder trace;
    ShardedServer server(tinyOptions(), ShardedServer::Options()
                                            .withNumShards(4)
                                            .withTrace(&trace));
    std::vector<Ast> pool;
    for (int i = 1; i <= 8; ++i)
        pool.push_back(tinyProgram(i));
    std::vector<Engine::PairRequest> pairs;
    for (std::size_t i = 0; i + 1 < pool.size(); ++i)
        pairs.push_back({&pool[i], &pool[i + 1]});

    auto future = server.submitCompareMany(pairs);
    ASSERT_TRUE(future.get().isOk());
    server.shutdown();

    // A split request records one complete chain PER SLICE; total
    // span count is a multiple of the chain length and every chain
    // is complete.
    auto spans = trace.spans();
    ASSERT_GT(spans.size(), 0u);
    EXPECT_EQ(spans.size() % kTracePhases, 0u);
    std::map<std::uint64_t, std::set<TracePhase>> chains;
    for (const auto& s : spans)
        chains[s.chain].insert(s.phase);
    for (const auto& [chain, phases] : chains)
        EXPECT_EQ(phases.size(), kTracePhases)
            << "incomplete chain " << chain;
}

} // namespace
} // namespace ccsa
