/**
 * @file
 * Tests for the tape-free inference path: TensorArena mechanics,
 * the InferenceScope contracts (no nesting, no mixing with
 * backward()), bitwise parity between no-grad and taped forwards
 * across every tree architecture / depth / latent precision, and the
 * steady-state allocation pin — a warm scope encodes a batch without
 * constructing a single heap-backed Tensor.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "base/rng.hh"
#include "frontend/parser.hh"
#include "model/predictor.hh"
#include "serve/latent_codec.hh"
#include "tensor/arena.hh"
#include "tensor/autograd.hh"
#include "tensor/tensor.hh"

// ------------------------------------------------------------------
// Global operator-new counter. Sanitizers interpose the allocator
// themselves, so the replacement is compiled out under ASan/TSan and
// the tests that need it fall back to the Tensor-level counter only.
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define CCSA_TEST_HAS_NEW_HOOK 1

namespace
{
std::atomic<std::uint64_t> g_new_calls{0};

void*
countedAlloc(std::size_t n)
{
    g_new_calls.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}
} // namespace

void*
operator new(std::size_t n)
{
    return countedAlloc(n);
}

void*
operator new[](std::size_t n)
{
    return countedAlloc(n);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

#else
#define CCSA_TEST_HAS_NEW_HOOK 0
#endif

namespace ccsa
{
namespace
{

// ------------------------------------------------------------------
// Helpers

Ast
tinyProgram(int loops)
{
    std::string src = "int main() {\n int n;\n cin >> n;\n";
    for (int i = 0; i < loops; ++i) {
        std::string v = "i" + std::to_string(i);
        src += " for (int " + v + " = 0; " + v + " < n; " + v +
            "++) { int z" + std::to_string(i) + " = " + v + "; }\n";
    }
    src += " return 0;\n}\n";
    return parseAndPrune(src);
}

/** Bitwise tensor equality: same shape, identical bytes. */
void
expectBitwiseEqual(const Tensor& a, const Tensor& b, const char* what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          a.size() * sizeof(float)),
              0)
        << what << ": no-grad forward diverged from the taped forward";
}

// ------------------------------------------------------------------
// TensorArena mechanics

TEST(Arena, BumpAllocatesWithinOneChunk)
{
    TensorArena arena(32);
    EXPECT_EQ(arena.chunkAllocations(), 0u);

    float* a = arena.allocate(8);
    float* b = arena.allocate(8);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(b, a + 8); // contiguous bump, no second malloc
    EXPECT_EQ(arena.usedFloats(), 16u);
    EXPECT_EQ(arena.chunkAllocations(), 1u);
    EXPECT_EQ(arena.chunkCount(), 1u);

    // Zero-size allocations are legal and non-null.
    EXPECT_NE(arena.allocate(0), nullptr);
    EXPECT_EQ(arena.usedFloats(), 16u);
}

TEST(Arena, OverflowAppendsChunkAndResetCoalesces)
{
    TensorArena arena(16);
    arena.allocate(16);
    arena.allocate(16); // overflow: second chunk
    arena.allocate(100); // oversized: chunk sized to the request
    EXPECT_EQ(arena.chunkAllocations(), 3u);
    EXPECT_EQ(arena.chunkCount(), 3u);
    EXPECT_EQ(arena.usedFloats(), 132u);
    EXPECT_EQ(arena.highWaterFloats(), 132u);

    // reset() pays one coalescing alloc...
    arena.reset();
    EXPECT_EQ(arena.usedFloats(), 0u);
    EXPECT_EQ(arena.chunkCount(), 1u);
    EXPECT_EQ(arena.chunkAllocations(), 4u);

    // ...after which the same workload runs with ZERO allocator
    // traffic: that is the property the serving loop leans on.
    for (int iter = 0; iter < 3; ++iter) {
        arena.allocate(16);
        arena.allocate(16);
        arena.allocate(100);
        EXPECT_EQ(arena.chunkCount(), 1u) << "iter " << iter;
        arena.reset();
    }
    EXPECT_EQ(arena.chunkAllocations(), 4u);
    EXPECT_EQ(arena.highWaterFloats(), 132u);
}

TEST(Arena, AllocationsAreDisjointAndWritable)
{
    TensorArena arena(8); // force several chunks
    std::vector<float*> spans;
    for (int i = 0; i < 10; ++i) {
        float* p = arena.allocate(5);
        for (int j = 0; j < 5; ++j)
            p[j] = static_cast<float>(i * 10 + j);
        spans.push_back(p);
    }
    for (int i = 0; i < 10; ++i)
        for (int j = 0; j < 5; ++j)
            EXPECT_FLOAT_EQ(spans[i][j],
                            static_cast<float>(i * 10 + j));
}

// ------------------------------------------------------------------
// InferenceScope contracts

TEST(InferenceScope, ActiveTracksScopeLifetime)
{
    EXPECT_FALSE(InferenceScope::active());
    {
        InferenceScope scope;
        EXPECT_TRUE(InferenceScope::active());
    }
    EXPECT_FALSE(InferenceScope::active());
}

TEST(InferenceScope, ArenaRequiresActiveScope)
{
    EXPECT_THROW(InferenceScope::arena(), PanicError);
}

TEST(InferenceScope, NestedScopesAreFatal)
{
    InferenceScope outer;
    EXPECT_THROW(InferenceScope inner, FatalError);
}

TEST(InferenceScope, BackwardInsideScopeIsFatal)
{
    // Record a perfectly good tape OUTSIDE the scope, then try to
    // differentiate it inside one: backward() must refuse.
    ag::Var w = ag::leaf(Tensor(2, 2, 0.5f));
    ag::Var loss = ag::sumAllOp(ag::mul(w, w));
    InferenceScope scope;
    EXPECT_THROW(ag::backward(loss), FatalError);
}

TEST(InferenceScope, ScopeDuringBackwardIsFatal)
{
    detail::BackwardInProgress backward_running;
    EXPECT_THROW(InferenceScope scope, FatalError);
}

TEST(InferenceScope, LeafUnderScopeIsFatal)
{
    InferenceScope scope;
    EXPECT_THROW(ag::leaf(Tensor(1, 1, 1.0f)), FatalError);
}

TEST(InferenceScope, BackwardOnNoGradRootIsFatal)
{
    ag::Var root;
    {
        InferenceScope scope;
        ag::Var x = ag::constant(Tensor(1, 1, 2.0f));
        // Copy OUT of the arena so the value survives the scope; the
        // no-grad provenance sticks regardless.
        root = ag::Var::noGrad(ag::mul(x, x).value().toOwned());
    }
    EXPECT_THROW(ag::backward(root), FatalError);
}

TEST(InferenceScope, NoGradOperandOnTapedPathPanics)
{
    // A no-grad result that escapes its scope must not silently join
    // a training graph — the tape would have a hole in it.
    ag::Var raw = ag::Var::noGrad(Tensor(1, 1, 3.0f));
    ag::Var taped = ag::leaf(Tensor(1, 1, 4.0f));
    EXPECT_THROW(ag::add(raw, taped), PanicError);
}

TEST(InferenceScope, NoGradVarRefusesGradAccessors)
{
    ag::Var raw = ag::Var::noGrad(Tensor(1, 2, 1.5f));
    EXPECT_TRUE(raw.defined());
    EXPECT_TRUE(raw.isNoGrad());
    EXPECT_FALSE(raw.requiresGrad());
    EXPECT_FLOAT_EQ(raw.value().at(0, 1), 1.5f);
    EXPECT_THROW(raw.grad(), PanicError);
    EXPECT_THROW(raw.zeroGrad(), PanicError);
    EXPECT_THROW(raw.mutableValue(), PanicError);
}

TEST(InferenceScope, OpsReturnArenaBackedNoGradVars)
{
    InferenceScope scope;
    const std::size_t used0 = InferenceScope::arena().usedFloats();

    ag::Var a = ag::constant(Tensor(3, 4, 1.0f));
    ag::Var b = ag::zeros(4, 2);
    ag::Var c = ag::matmul(a, b);
    EXPECT_TRUE(c.isNoGrad());
    EXPECT_EQ(c.node(), nullptr);
    EXPECT_TRUE(c.value().isBorrowed());
    EXPECT_TRUE(b.value().isBorrowed());
    EXPECT_GT(InferenceScope::arena().usedFloats(), used0);
    EXPECT_FLOAT_EQ(c.value().at(2, 1), 0.0f);
}

// ------------------------------------------------------------------
// No-grad vs taped parity

TEST(InferenceScope, OpChainMatchesTapedBitwise)
{
    // A chain touching the elementwise / reduction / broadcast op
    // families; the model-level sweep below covers the structural
    // ops (gather/stack/segment/pick).
    Rng rng(31);
    Tensor x(5, 7), w(7, 3), bias(1, 3);
    x.fillNormal(rng, 0.0f, 1.0f);
    w.fillNormal(rng, 0.0f, 1.0f);
    bias.fillNormal(rng, 0.0f, 1.0f);

    auto run = [&]() {
        ag::Var h = ag::matmul(ag::constant(x), ag::constant(w));
        h = ag::addRowBroadcast(h, ag::constant(bias));
        ag::Var s = ag::sigmoid(h);
        ag::Var t = ag::tanhOp(h);
        ag::Var r = ag::relu(ag::sub(s, t));
        ag::Var m = ag::mul(ag::scale(s, 0.25f), t);
        ag::Var sum = ag::addN({r, m, s});
        return ag::meanRowsOp(ag::concatColsOp(sum, h));
    };

    Tensor taped = run().value();
    Tensor nograd;
    {
        InferenceScope scope;
        nograd = run().value().toOwned();
    }
    expectBitwiseEqual(nograd, taped, "op chain");
}

TEST(InferenceScope, EncoderParityAcrossArchLayersAndPrecision)
{
    // The tentpole guarantee: for every tree architecture, stack
    // depth, and latent precision, the tape-free encoder output is
    // bitwise-identical to the taped one — so a serving process can
    // switch to the no-grad path with zero behaviour change.
    std::vector<Ast> progs;
    progs.push_back(tinyProgram(1));
    progs.push_back(tinyProgram(3));
    progs.push_back(tinyProgram(5));
    std::vector<const Ast*> asts;
    for (const Ast& a : progs)
        asts.push_back(&a);

    const nn::TreeArch arches[] = {nn::TreeArch::Uni,
                                   nn::TreeArch::Bi,
                                   nn::TreeArch::Alternating};
    const LatentPrecision precisions[] = {LatentPrecision::kFp32,
                                          LatentPrecision::kFp16,
                                          LatentPrecision::kInt8};
    for (nn::TreeArch arch : arches) {
        for (int layers = 1; layers <= 3; ++layers) {
            EncoderConfig cfg;
            cfg.embedDim = 6;
            cfg.hiddenDim = 6;
            cfg.layers = layers;
            cfg.arch = arch;
            ComparativePredictor model(cfg, /*seed=*/17);

            std::vector<ag::Var> taped = model.encodeMany(asts);
            std::vector<Tensor> nograd;
            {
                InferenceScope scope;
                std::vector<ag::Var> encoded = model.encodeMany(asts);
                for (const ag::Var& v : encoded) {
                    EXPECT_TRUE(v.isNoGrad());
                    nograd.push_back(v.value().toOwned());
                }
            }
            ASSERT_EQ(nograd.size(), taped.size());
            const std::string what =
                std::string(nn::treeArchName(arch)) + "/layers=" +
                std::to_string(layers);
            for (std::size_t i = 0; i < taped.size(); ++i) {
                expectBitwiseEqual(nograd[i], taped[i].value(),
                                   what.c_str());
                // And through every cache codec: quantize both sides,
                // decode, compare — the stored-latent grid must not
                // care which forward produced the floats.
                for (LatentPrecision p : precisions) {
                    Tensor dt = decodeLatent(
                        encodeLatent(taped[i].value(), p));
                    Tensor dn =
                        decodeLatent(encodeLatent(nograd[i], p));
                    expectBitwiseEqual(
                        dn, dt,
                        (what + "/" + latentPrecisionName(p)).c_str());
                }
            }
        }
    }
}

TEST(InferenceScope, GcnAndTokenLstmEncodersMatchTapedBitwise)
{
    // The non-tree encoders exercise the remaining op surface
    // (spmm, meanRows readout, sequence LSTM gather path).
    Ast prog = tinyProgram(3);
    std::vector<const Ast*> asts{&prog};
    for (EncoderKind kind :
         {EncoderKind::Gcn, EncoderKind::TokenLstm}) {
        EncoderConfig cfg;
        cfg.kind = kind;
        cfg.embedDim = 6;
        cfg.hiddenDim = 6;
        cfg.layers = 2;
        ComparativePredictor model(cfg, /*seed=*/23);
        Tensor taped = model.encodeMany(asts)[0].value();
        Tensor nograd;
        {
            InferenceScope scope;
            nograd = model.encodeMany(asts)[0].value().toOwned();
        }
        expectBitwiseEqual(nograd, taped, encoderKindName(kind));
    }
}

// ------------------------------------------------------------------
// Steady-state allocation pin

TEST(InferenceScope, WarmScopeEncodesWithZeroTensorAllocations)
{
    std::vector<Ast> progs;
    progs.push_back(tinyProgram(2));
    progs.push_back(tinyProgram(4));
    std::vector<const Ast*> asts;
    for (const Ast& a : progs)
        asts.push_back(&a);

    EncoderConfig cfg;
    cfg.embedDim = 8;
    cfg.hiddenDim = 8;
    cfg.layers = 2;
    cfg.arch = nn::TreeArch::Bi;
    ComparativePredictor model(cfg, /*seed=*/5);

    // Iteration 0 warms the thread arena (it may grow chunks and the
    // dtor's reset() may coalesce once). Every LATER iteration must
    // construct zero owned Tensors and touch the chunk allocator zero
    // times: all tensor storage is recycled arena memory.
    std::uint64_t warm_tensor_allocs = 0;
    std::size_t warm_chunk_allocs = 0;
    for (int iter = 0; iter < 4; ++iter) {
        const std::uint64_t tensors0 = tensorHeapAllocCount();
        float sink = 0.0f;
        std::size_t chunks1 = 0;
        {
            InferenceScope scope;
            const std::size_t chunks0 =
                InferenceScope::arena().chunkAllocations();
            std::vector<ag::Var> encoded = model.encodeMany(asts);
            for (const ag::Var& v : encoded)
                sink += v.value().at(0, 0);
            chunks1 =
                InferenceScope::arena().chunkAllocations() - chunks0;
        }
        const std::uint64_t tensors1 =
            tensorHeapAllocCount() - tensors0;
        EXPECT_TRUE(std::isfinite(sink));
        if (iter == 0)
            continue;
        warm_tensor_allocs += tensors1;
        warm_chunk_allocs += chunks1;
        EXPECT_EQ(tensors1, 0u)
            << "iter " << iter
            << ": a warm no-grad encode heap-allocated a Tensor";
        EXPECT_EQ(chunks1, 0u)
            << "iter " << iter << ": the warm arena grew a chunk";
    }
    EXPECT_EQ(warm_tensor_allocs, 0u);
    EXPECT_EQ(warm_chunk_allocs, 0u);

#if CCSA_TEST_HAS_NEW_HOOK
    // Whole-process view: a warm no-grad iteration should spend far
    // fewer operator-new calls than the taped forward, which builds a
    // VarNode + closure + grad-ready Tensor per op. Non-tensor
    // allocations (result vectors, op index vectors) legitimately
    // remain, so this is a ratio bound, not a zero bound.
    {
        InferenceScope scope;
        (void)model.encodeMany(asts); // ensure warm
    }
    const std::uint64_t nograd0 =
        g_new_calls.load(std::memory_order_relaxed);
    {
        InferenceScope scope;
        (void)model.encodeMany(asts);
    }
    const std::uint64_t nograd_news =
        g_new_calls.load(std::memory_order_relaxed) - nograd0;

    const std::uint64_t taped0 =
        g_new_calls.load(std::memory_order_relaxed);
    (void)model.encodeMany(asts);
    const std::uint64_t taped_news =
        g_new_calls.load(std::memory_order_relaxed) - taped0;

    EXPECT_LT(nograd_news * 2, taped_news)
        << "no-grad warm iteration allocated " << nograd_news
        << " times vs " << taped_news << " taped";
#endif
}

// ------------------------------------------------------------------
// Concurrency: two threads, two scopes, one shared model. Run under
// TSan in CI — the arena is thread-local and the model is read-only,
// so there must be no shared mutable state between the threads.

TEST(InferenceScope, TwoThreadsTwoScopesOneSharedModel)
{
    std::vector<Ast> progs;
    progs.push_back(tinyProgram(1));
    progs.push_back(tinyProgram(4));
    std::vector<const Ast*> asts;
    for (const Ast& a : progs)
        asts.push_back(&a);

    EncoderConfig cfg;
    cfg.embedDim = 6;
    cfg.hiddenDim = 6;
    cfg.layers = 2;
    cfg.arch = nn::TreeArch::Alternating;
    const ComparativePredictor model(cfg, /*seed=*/29);

    std::vector<Tensor> reference;
    for (const ag::Var& v : model.encodeMany(asts))
        reference.push_back(v.value());

    std::atomic<int> mismatches{0};
    auto worker = [&]() {
        for (int iter = 0; iter < 3; ++iter) {
            InferenceScope scope;
            std::vector<ag::Var> encoded = model.encodeMany(asts);
            for (std::size_t i = 0; i < encoded.size(); ++i) {
                const Tensor& got = encoded[i].value();
                if (std::memcmp(got.data(), reference[i].data(),
                                got.size() * sizeof(float)) != 0)
                    mismatches.fetch_add(1);
            }
        }
    };
    std::thread t1(worker);
    std::thread t2(worker);
    t1.join();
    t2.join();
    EXPECT_EQ(mismatches.load(), 0);
}

} // namespace
} // namespace ccsa
