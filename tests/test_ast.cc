/**
 * @file
 * Tests for the AST arena, traversals, pruning, and node-kind
 * metadata.
 */

#include <gtest/gtest.h>

#include "ast/ast.hh"
#include "base/logging.hh"

namespace ccsa
{
namespace
{

TEST(NodeKind, NamesAndCategoriesCoverAllKinds)
{
    for (int i = 0; i < kNumNodeKinds; ++i) {
        NodeKind k = static_cast<NodeKind>(i);
        EXPECT_NE(nodeKindName(k), nullptr);
        // Category must be resolvable for every kind.
        NodeCategory c = nodeKindCategory(k);
        EXPECT_NE(nodeCategoryName(c), nullptr);
    }
}

TEST(NodeKind, CategorySpotChecks)
{
    EXPECT_EQ(nodeKindCategory(NodeKind::ForStmt),
              NodeCategory::Statement);
    EXPECT_EQ(nodeKindCategory(NodeKind::Add),
              NodeCategory::Operation);
    EXPECT_EQ(nodeKindCategory(NodeKind::IntLiteral),
              NodeCategory::Literal);
    EXPECT_EQ(nodeKindCategory(NodeKind::CallExpr),
              NodeCategory::Expression);
    EXPECT_EQ(nodeKindCategory(NodeKind::Root),
              NodeCategory::Support);
}

TEST(Ast, BuildAndNavigate)
{
    Ast ast(NodeKind::Root);
    int fn = ast.addNode(NodeKind::FunctionDef, ast.root(), "main");
    int body = ast.addNode(NodeKind::CompoundStmt, fn);
    int ret = ast.addNode(NodeKind::ReturnStmt, body);
    EXPECT_EQ(ast.size(), 4);
    EXPECT_EQ(ast.node(ret).parent, body);
    EXPECT_EQ(ast.node(fn).text, "main");
    EXPECT_EQ(ast.parents(), (std::vector<int>{-1, 0, 1, 2}));
    EXPECT_EQ(ast.depth(), 4);
    EXPECT_EQ(ast.countKind(NodeKind::ReturnStmt), 1);
    EXPECT_EQ(ast.subtreeSize(fn), 3);
}

TEST(Ast, InvalidAccessPanics)
{
    Ast ast;
    EXPECT_THROW(ast.node(5), PanicError);
    EXPECT_THROW(ast.addNode(NodeKind::IfStmt, 9), PanicError);
}

TEST(Ast, PreorderVisitsParentFirstInOrder)
{
    Ast ast(NodeKind::Root);
    int a = ast.addNode(NodeKind::FunctionDef, 0, "a");
    int b = ast.addNode(NodeKind::FunctionDef, 0, "b");
    int a1 = ast.addNode(NodeKind::CompoundStmt, a);
    std::vector<int> visited;
    ast.visitPreorder([&](int id) { visited.push_back(id); });
    EXPECT_EQ(visited, (std::vector<int>{0, a, a1, b}));
}

TEST(Ast, KindIdsMatchNodes)
{
    Ast ast(NodeKind::Root);
    ast.addNode(NodeKind::IfStmt, 0);
    auto ids = ast.kindIds();
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], kindId(NodeKind::Root));
    EXPECT_EQ(ids[1], kindId(NodeKind::IfStmt));
}

TEST(Ast, SExpressionFormat)
{
    Ast ast(NodeKind::Root);
    int fn = ast.addNode(NodeKind::FunctionDef, 0, "main");
    ast.addNode(NodeKind::CompoundStmt, fn);
    EXPECT_EQ(ast.toSExpression(),
              "(Root (FunctionDef:main (CompoundStmt)))");
}

TEST(Ast, DotContainsAllNodesAndEdges)
{
    Ast ast(NodeKind::Root);
    int fn = ast.addNode(NodeKind::FunctionDef, 0, "f");
    ast.addNode(NodeKind::CompoundStmt, fn);
    std::string dot = ast.toDot();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
    EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);
}

TEST(Prune, KeepsOnlyFunctionSubtrees)
{
    Ast full(NodeKind::Root);
    // Global decl should be pruned away.
    int g = full.addNode(NodeKind::DeclStmt, 0, "int");
    full.addNode(NodeKind::VarDecl, g, "global");
    int f1 = full.addNode(NodeKind::FunctionDef, 0, "main");
    int b1 = full.addNode(NodeKind::CompoundStmt, f1);
    full.addNode(NodeKind::ReturnStmt, b1);
    int f2 = full.addNode(NodeKind::FunctionDef, 0, "helper");
    full.addNode(NodeKind::CompoundStmt, f2);

    Ast pruned = pruneToFunctions(full);
    EXPECT_EQ(pruned.countKind(NodeKind::DeclStmt), 0);
    EXPECT_EQ(pruned.countKind(NodeKind::FunctionDef), 2);
    // Functions hang directly off the root (§IV-A).
    for (int id : pruned.nodesOfKind(NodeKind::FunctionDef))
        EXPECT_EQ(pruned.node(id).parent, pruned.root());
    EXPECT_EQ(pruned.countKind(NodeKind::ReturnStmt), 1);
}

TEST(Prune, NoFunctionsFatal)
{
    Ast full(NodeKind::Root);
    full.addNode(NodeKind::DeclStmt, 0);
    EXPECT_THROW(pruneToFunctions(full), FatalError);
}

} // namespace
} // namespace ccsa
