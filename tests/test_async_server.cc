/**
 * @file
 * Tests for the async serving subsystem: the BoundedQueue
 * backpressure primitive and the AsyncServer facade. The pinned
 * contracts: every future resolves to a value bitwise-identical to
 * the synchronous Engine path (including under an 8-producer stress
 * load), shutdown drains every accepted request, a full queue rejects
 * trySubmit without losing anything, and ServerStats exposes the
 * batching histogram, latency percentiles, and the engine's
 * encoding-cache counters.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "frontend/parser.hh"
#include "serve/async_server.hh"

namespace ccsa
{
namespace
{

using std::chrono::microseconds;
using std::chrono::milliseconds;

Ast
tinyProgram(int loops)
{
    std::string src = "int main() {\n int n;\n cin >> n;\n";
    for (int i = 0; i < loops; ++i) {
        std::string v = "i" + std::to_string(i);
        src += " for (int " + v + " = 0; " + v + " < n; " + v +
            "++) { int z" + std::to_string(i) + " = " + v + "; }\n";
    }
    src += " return 0;\n}\n";
    return parseAndPrune(src);
}

Engine::Options
tinyOptions()
{
    return Engine::Options()
        .withEmbedDim(8)
        .withHiddenDim(8)
        .withSeed(7)
        .withThreads(1);
}

// ---------------------------------------------------- BoundedQueue

TEST(BoundedQueue, FifoPushPop)
{
    BoundedQueue<int> q(4);
    EXPECT_EQ(q.push(1), QueuePush::Ok);
    EXPECT_EQ(q.push(2), QueuePush::Ok);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryPushReportsFullWithoutConsumingItem)
{
    BoundedQueue<std::string> q(1);
    std::string a = "first", b = "second";
    EXPECT_EQ(q.tryPush(std::move(a)), QueuePush::Ok);
    EXPECT_EQ(q.tryPush(std::move(b)), QueuePush::Full);
    EXPECT_EQ(b, "second"); // rejected item left untouched
    EXPECT_EQ(q.pop().value(), "first");
    EXPECT_EQ(q.tryPush(std::move(b)), QueuePush::Ok);
}

TEST(BoundedQueue, CloseDrainsRemainingThenReportsExhaustion)
{
    BoundedQueue<int> q(4);
    ASSERT_EQ(q.push(10), QueuePush::Ok);
    ASSERT_EQ(q.push(20), QueuePush::Ok);
    q.close();
    EXPECT_EQ(q.push(30), QueuePush::Closed);
    EXPECT_EQ(q.tryPush(40), QueuePush::Closed);
    EXPECT_EQ(q.pop().value(), 10);
    EXPECT_EQ(q.pop().value(), 20);
    EXPECT_FALSE(q.pop().has_value());
    EXPECT_FALSE(q.popFor(microseconds(100)).has_value());
}

TEST(BoundedQueue, TryPopNeverBlocks)
{
    BoundedQueue<int> q(2);
    EXPECT_FALSE(q.tryPop().has_value());
    ASSERT_EQ(q.push(5), QueuePush::Ok);
    EXPECT_EQ(q.tryPop().value(), 5);
    q.close();
    EXPECT_FALSE(q.tryPop().has_value());
}

TEST(BoundedQueue, PopForTimesOutOnEmptyQueue)
{
    BoundedQueue<int> q(2);
    EXPECT_FALSE(q.popFor(microseconds(500)).has_value());
    ASSERT_EQ(q.push(7), QueuePush::Ok);
    EXPECT_EQ(q.popFor(microseconds(500)).value(), 7);
}

TEST(BoundedQueue, BlockedProducerUnblocksWhenSpaceFrees)
{
    BoundedQueue<int> q(1);
    ASSERT_EQ(q.push(1), QueuePush::Ok);
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        EXPECT_EQ(q.push(2), QueuePush::Ok); // blocks until pop
        pushed = true;
    });
    std::this_thread::sleep_for(milliseconds(20));
    EXPECT_FALSE(pushed.load());
    EXPECT_EQ(q.pop().value(), 1);
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, BlockedProducerUnblocksOnClose)
{
    BoundedQueue<int> q(1);
    ASSERT_EQ(q.push(1), QueuePush::Ok);
    std::thread producer(
        [&] { EXPECT_EQ(q.push(2), QueuePush::Closed); });
    std::this_thread::sleep_for(milliseconds(20));
    q.close();
    producer.join();
}

TEST(BoundedQueue, CloseWakesEveryBlockedProducerItemsUntouched)
{
    // The shutdown contract from bounded_queue.hh: close() wakes ALL
    // parked producers (not just one), each returns Closed with its
    // item still in the caller's hands, and already-accepted items
    // stay poppable (drain, not shed).
    BoundedQueue<std::unique_ptr<int>> q(1);
    ASSERT_EQ(q.push(std::make_unique<int>(0)), QueuePush::Ok);

    constexpr int kProducers = 6;
    std::atomic<int> closedCount{0};
    std::atomic<int> itemsIntact{0};
    std::vector<std::thread> producers;
    for (int p = 1; p <= kProducers; ++p) {
        producers.emplace_back([&, p] {
            auto item = std::make_unique<int>(p);
            if (q.push(std::move(item)) == QueuePush::Closed) {
                closedCount++;
                // Closed must leave the item unmoved — the serving
                // layers rely on this to fail the request with an
                // attributed status instead of losing it.
                if (item != nullptr && *item == p)
                    itemsIntact++;
            }
        });
    }
    std::this_thread::sleep_for(milliseconds(30));
    q.close();
    for (std::thread& t : producers)
        t.join();
    EXPECT_EQ(closedCount.load(), kProducers);
    EXPECT_EQ(itemsIntact.load(), kProducers);

    // Drain semantics: the one accepted item survives the close.
    auto drained = q.pop();
    ASSERT_TRUE(drained.has_value());
    EXPECT_EQ(**drained, 0);
    EXPECT_FALSE(q.pop().has_value());
}

// ----------------------------------------------------- AsyncServer

TEST(AsyncServer, CompareMatchesSynchronousEngineBitwise)
{
    Engine engine(tinyOptions());
    Ast a = tinyProgram(2);
    Ast b = tinyProgram(5);
    double expected = engine.compare(a, b).value();

    AsyncServer server(engine);
    auto future = server.submitCompare(a, b);
    Result<double> got = future.get();
    ASSERT_TRUE(got.isOk());
    EXPECT_EQ(got.value(), expected);
}

TEST(AsyncServer, CompareManyMatchesSynchronousEngineBitwise)
{
    Engine engine(tinyOptions());
    std::vector<Ast> trees;
    for (int i = 1; i <= 5; ++i)
        trees.push_back(tinyProgram(i));
    std::vector<Engine::PairRequest> pairs;
    for (std::size_t i = 0; i < trees.size(); ++i)
        for (std::size_t j = 0; j < trees.size(); ++j)
            if (i != j)
                pairs.push_back({&trees[i], &trees[j]});
    std::vector<double> expected = engine.compareMany(pairs).value();

    AsyncServer server(engine);
    auto got = server.submitCompareMany(pairs).get();
    ASSERT_TRUE(got.isOk());
    ASSERT_EQ(got.value().size(), expected.size());
    for (std::size_t k = 0; k < expected.size(); ++k)
        EXPECT_EQ(got.value()[k], expected[k]) << "pair " << k;
}

TEST(AsyncServer, RankMatchesSynchronousEngineExactly)
{
    Engine engine(tinyOptions());
    Ast fast = tinyProgram(1);
    Ast mid = tinyProgram(3);
    Ast slow = tinyProgram(6);
    std::vector<const Ast*> candidates{&mid, &fast, &slow};
    auto expected = engine.rank(candidates).value();

    AsyncServer server(engine);
    auto got = server.submitRank(candidates).get();
    ASSERT_TRUE(got.isOk());
    ASSERT_EQ(got.value().size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got.value()[i].index, expected[i].index);
        EXPECT_EQ(got.value()[i].wins, expected[i].wins);
        EXPECT_EQ(got.value()[i].meanProbFaster,
                  expected[i].meanProbFaster);
    }
}

TEST(AsyncServer, ManyProducerStressIsBitwiseEqualToSyncPath)
{
    constexpr int kClients = 8;
    constexpr int kRequestsPerClient = 100;
    constexpr int kTrees = 6;

    Engine engine(tinyOptions());
    std::vector<Ast> trees;
    for (int i = 1; i <= kTrees; ++i)
        trees.push_back(tinyProgram(i));

    // Reference matrix from the synchronous path, computed first so
    // the async run also exercises warm-cache fan-out.
    std::vector<Engine::PairRequest> allPairs;
    for (int i = 0; i < kTrees; ++i)
        for (int j = 0; j < kTrees; ++j)
            if (i != j)
                allPairs.push_back({&trees[i], &trees[j]});
    std::vector<double> reference =
        engine.compareMany(allPairs).value();
    auto expectedProb = [&](int i, int j) {
        // Row-major over ordered pairs with the diagonal removed.
        int row = i * (kTrees - 1);
        int col = j < i ? j : j - 1;
        return reference[static_cast<std::size_t>(row + col)];
    };

    AsyncServer server(engine,
                       AsyncServer::Options()
                           .withQueueCapacity(64)
                           .withMaxBatchSize(32)
                           .withMaxBatchDelay(microseconds(200)));

    std::vector<std::thread> clients;
    std::vector<int> mismatches(kClients, 0);
    std::vector<int> failures(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int k = 0; k < kRequestsPerClient; ++k) {
                int i = (c * 7 + k) % kTrees;
                int j = (c * 11 + 3 * k + 1) % kTrees;
                if (i == j)
                    j = (j + 1) % kTrees;
                auto future = server.submitCompare(trees[static_cast<
                                                       std::size_t>(i)],
                                                   trees[static_cast<
                                                       std::size_t>(j)]);
                Result<double> got = future.get();
                if (!got.isOk())
                    failures[static_cast<std::size_t>(c)]++;
                else if (got.value() != expectedProb(i, j))
                    mismatches[static_cast<std::size_t>(c)]++;
            }
        });
    }
    for (std::thread& t : clients)
        t.join();
    for (int c = 0; c < kClients; ++c) {
        EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0)
            << "client " << c;
        EXPECT_EQ(mismatches[static_cast<std::size_t>(c)], 0)
            << "client " << c;
    }

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.requestsSubmitted,
              static_cast<std::uint64_t>(kClients *
                                         kRequestsPerClient));
    EXPECT_EQ(stats.requestsCompleted, stats.requestsSubmitted);
    EXPECT_EQ(stats.requestsFailed, 0u);
    EXPECT_EQ(stats.pairsServed, stats.requestsSubmitted);
    EXPECT_GE(stats.batches, 1u);
    EXPECT_EQ(stats.batchSizes.count(), stats.batches);
    EXPECT_EQ(stats.batchSizes.sum(), stats.pairsServed);
}

TEST(AsyncServer, CoalescesStagedRequestsIntoOneBatch)
{
    Engine engine(tinyOptions());
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(2);

    AsyncServer server(engine,
                       AsyncServer::Options()
                           .withStartPaused(true)
                           .withMaxBatchSize(10)
                           .withMaxBatchDelay(milliseconds(50)));
    std::vector<std::future<Result<double>>> futures;
    for (int k = 0; k < 10; ++k)
        futures.push_back(server.submitCompare(a, b));
    EXPECT_EQ(server.stats().queueDepth, 10u);

    server.start();
    for (auto& f : futures)
        EXPECT_TRUE(f.get().isOk());

    // All ten single-pair requests were staged before the batcher
    // ran, so they coalesce into exactly one full batch.
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.pairsServed, 10u);
    EXPECT_EQ(stats.batchSizes.max(), 10u);
    EXPECT_EQ(stats.queueDepth, 0u);
}

TEST(AsyncServer, ShutdownDrainsPendingRequests)
{
    Engine engine(tinyOptions());
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(3);

    // Paused server: requests stay queued until shutdown, which must
    // still answer every accepted request before returning.
    AsyncServer server(
        engine, AsyncServer::Options().withStartPaused(true));
    std::vector<std::future<Result<double>>> futures;
    for (int k = 0; k < 20; ++k)
        futures.push_back(server.submitCompare(a, b));
    EXPECT_EQ(server.stats().queueDepth, 20u);

    server.shutdown();
    EXPECT_TRUE(server.isShutdown());
    double expected = engine.compare(a, b).value();
    for (auto& f : futures) {
        Result<double> got = f.get();
        ASSERT_TRUE(got.isOk());
        EXPECT_EQ(got.value(), expected);
    }
    EXPECT_EQ(server.stats().requestsCompleted, 20u);
}

TEST(AsyncServer, DeadlineExpiresWhileQueued)
{
    Engine engine(tinyOptions());
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(3);

    // Paused server: the request sits queued past its deadline, so
    // the batcher must complete it with DeadlineExceeded instead of
    // encoding it — the deadline bounds queue wait, not execution.
    AsyncServer server(
        engine, AsyncServer::Options().withStartPaused(true));
    auto expired = server.submitCompare(
        SubmitOptions().withDeadline(microseconds(1000)), a, b);
    std::this_thread::sleep_for(milliseconds(50));
    server.start();
    Result<double> got = expired.get();
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), StatusCode::DeadlineExceeded);

    // A generous deadline is not a rejection.
    auto fine = server.submitCompare(
        SubmitOptions().withDeadline(microseconds(30'000'000)), a,
        b);
    Result<double> fineGot = fine.get();
    ASSERT_TRUE(fineGot.isOk());
    EXPECT_EQ(fineGot.value(), engine.compare(a, b).value());

    server.shutdown();
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.requestsRejectedDeadline, 1u);
    EXPECT_EQ(stats.requestsCompleted, 1u);
    // Conservation: submitted == completed + failed + deadline.
    EXPECT_EQ(stats.requestsSubmitted,
              stats.requestsCompleted + stats.requestsFailed +
                  stats.requestsRejectedDeadline);
}

TEST(AsyncServer, SubmitAfterShutdownResolvesUnavailable)
{
    Engine engine(tinyOptions());
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(2);
    AsyncServer server(engine);
    server.shutdown();
    server.shutdown(); // idempotent

    auto blocking = server.submitCompare(a, b).get();
    ASSERT_FALSE(blocking.isOk());
    EXPECT_EQ(blocking.status().code(), StatusCode::Unavailable);

    // trySubmit distinguishes teardown (future with Unavailable)
    // from backpressure (nullopt).
    auto attempted = server.trySubmitCompare(a, b);
    ASSERT_TRUE(attempted.has_value());
    auto tried = attempted->get();
    ASSERT_FALSE(tried.isOk());
    EXPECT_EQ(tried.status().code(), StatusCode::Unavailable);
    EXPECT_GE(server.stats().requestsRejected, 2u);
}

TEST(AsyncServer, TrySubmitShedsLoadWhenQueueIsFull)
{
    Engine engine(tinyOptions());
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(2);

    AsyncServer server(engine,
                       AsyncServer::Options()
                           .withStartPaused(true)
                           .withQueueCapacity(2));
    auto first = server.trySubmitCompare(a, b);
    auto second = server.trySubmitCompare(a, b);
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());

    auto third = server.trySubmitCompare(a, b);
    EXPECT_FALSE(third.has_value()); // queue full: load shed

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.queueDepth, 2u);
    EXPECT_EQ(stats.queueCapacity, 2u);
    EXPECT_EQ(stats.requestsSubmitted, 2u);
    EXPECT_EQ(stats.requestsRejected, 1u);

    // The accepted requests are still answered once draining starts.
    server.shutdown();
    EXPECT_TRUE(first->get().isOk());
    EXPECT_TRUE(second->get().isOk());
}

TEST(AsyncServer, MalformedRequestsFailOnlyTheirOwnFuture)
{
    Engine engine(tinyOptions());
    Ast a = tinyProgram(1);
    AsyncServer server(engine);

    auto null_pair = server
                         .submitCompareMany(
                             {Engine::PairRequest{&a, nullptr}})
                         .get();
    ASSERT_FALSE(null_pair.isOk());
    EXPECT_EQ(null_pair.status().code(),
              StatusCode::InvalidArgument);

    auto degenerate = server.submitRank({&a}).get();
    ASSERT_FALSE(degenerate.isOk());
    EXPECT_EQ(degenerate.status().code(),
              StatusCode::InvalidArgument);

    auto empty = server.submitCompareMany({}).get();
    ASSERT_TRUE(empty.isOk());
    EXPECT_TRUE(empty.value().empty());

    // The server keeps serving after rejecting malformed requests.
    Ast b = tinyProgram(2);
    EXPECT_TRUE(server.submitCompare(a, b).get().isOk());
    EXPECT_EQ(server.stats().requestsFailed, 2u);
}

TEST(AsyncServer, StatsExposeEngineCacheCountersAndLatency)
{
    Engine engine(tinyOptions());
    Ast a = tinyProgram(2);
    Ast b = tinyProgram(4);
    AsyncServer server(engine);

    // Same pair repeatedly: first batch encodes, later ones hit.
    for (int round = 0; round < 3; ++round)
        ASSERT_TRUE(server.submitCompare(a, b).get().isOk());

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.engine.treesEncoded, 2u);
    EXPECT_GE(stats.engine.cacheHits, 2u);
    EXPECT_GE(stats.engine.cacheMisses, 2u);
    EXPECT_EQ(stats.engine.cacheSize, 2u);
    EXPECT_EQ(stats.engine.pairsServed, 3u);

    EXPECT_GE(stats.latencyP50Ms, 0.0);
    EXPECT_GE(stats.latencyP99Ms, stats.latencyP50Ms);
    EXPECT_GE(stats.latencyMaxMs, stats.latencyP99Ms);
    EXPECT_GT(stats.latencyMaxMs, 0.0);
}

TEST(AsyncServer, OwningConstructorServesItsOwnEngine)
{
    AsyncServer server(tinyOptions(),
                       AsyncServer::Options().withMaxBatchSize(8));
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(2);
    auto got = server.submitCompare(a, b).get();
    ASSERT_TRUE(got.isOk());
    EXPECT_GE(got.value(), 0.0);
    EXPECT_LE(got.value(), 1.0);
    // Bitwise parity with a synchronous engine built from the same
    // options/seed.
    Engine reference(tinyOptions());
    EXPECT_EQ(got.value(), reference.compare(a, b).value());
}

} // namespace
} // namespace ccsa
