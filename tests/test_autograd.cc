/**
 * @file
 * Gradient checks for every autograd operation, plus tape mechanics
 * (fan-out accumulation, constant pruning, loss values).
 */

#include <gtest/gtest.h>

#include "gradcheck.hh"
#include "tensor/autograd.hh"

namespace ccsa
{
namespace
{

using testutil::expectGradientsMatch;
using testutil::patterned;

TEST(Autograd, MatmulGradients)
{
    std::vector<ag::Var> leaves{
        ag::leaf(patterned(2, 3, 0.3f)),
        ag::leaf(patterned(3, 4, 0.4f, 1.0f))};
    expectGradientsMatch(leaves, [&] {
        return ag::sumAllOp(ag::matmul(leaves[0], leaves[1]));
    });
}

TEST(Autograd, AddSubMulGradients)
{
    std::vector<ag::Var> leaves{
        ag::leaf(patterned(3, 3, 0.5f)),
        ag::leaf(patterned(3, 3, 0.5f, 2.0f))};
    expectGradientsMatch(leaves, [&] {
        ag::Var s = ag::add(leaves[0], leaves[1]);
        ag::Var d = ag::sub(s, leaves[1]);
        ag::Var m = ag::mul(d, leaves[0]);
        return ag::sumAllOp(m);
    });
}

TEST(Autograd, ScaleAndAddN)
{
    std::vector<ag::Var> leaves{
        ag::leaf(patterned(2, 2, 0.4f)),
        ag::leaf(patterned(2, 2, 0.4f, 1.0f)),
        ag::leaf(patterned(2, 2, 0.4f, 2.0f))};
    expectGradientsMatch(leaves, [&] {
        return ag::sumAllOp(ag::scale(
            ag::addN({leaves[0], leaves[1], leaves[2]}), 0.7f));
    });
}

TEST(Autograd, NonlinearityGradients)
{
    std::vector<ag::Var> leaves{ag::leaf(patterned(2, 4, 0.8f))};
    expectGradientsMatch(leaves, [&] {
        return ag::sumAllOp(ag::sigmoid(leaves[0]));
    });
    expectGradientsMatch(leaves, [&] {
        return ag::sumAllOp(ag::tanhOp(leaves[0]));
    });
    expectGradientsMatch(leaves, [&] {
        // Shift away from zero where relu is non-differentiable.
        return ag::sumAllOp(
            ag::relu(ag::add(leaves[0],
                             ag::constant(Tensor(2, 4, 0.05f)))));
    });
}

TEST(Autograd, RowBroadcastGradients)
{
    std::vector<ag::Var> leaves{
        ag::leaf(patterned(3, 2, 0.3f)),
        ag::leaf(patterned(1, 2, 0.3f, 1.5f))};
    expectGradientsMatch(leaves, [&] {
        return ag::sumAllOp(
            ag::addRowBroadcast(leaves[0], leaves[1]));
    });
}

TEST(Autograd, ConcatColsGradients)
{
    std::vector<ag::Var> leaves{
        ag::leaf(patterned(2, 2, 0.5f)),
        ag::leaf(patterned(2, 3, 0.5f, 0.7f))};
    expectGradientsMatch(leaves, [&] {
        ag::Var cat = ag::concatColsOp(leaves[0], leaves[1]);
        return ag::sumAllOp(ag::mul(cat, cat));
    });
}

TEST(Autograd, GatherRowsGradients)
{
    std::vector<ag::Var> leaves{ag::leaf(patterned(5, 3, 0.4f))};
    expectGradientsMatch(leaves, [&] {
        // Repeated index exercises scatter-accumulation.
        ag::Var g = ag::gatherRows(leaves[0], {0, 2, 2, 4});
        return ag::sumAllOp(ag::mul(g, g));
    });
}

TEST(Autograd, GatherRowsOutOfRangePanics)
{
    ag::Var t = ag::leaf(Tensor(3, 2, 1.0f));
    EXPECT_THROW(ag::gatherRows(t, {3}), PanicError);
}

TEST(Autograd, StackRowsValuesAndGradients)
{
    // Mixed row counts: 1 + 2 + 1 rows -> 4 x 3.
    std::vector<ag::Var> leaves{ag::leaf(patterned(1, 3, 0.4f)),
                                ag::leaf(patterned(2, 3, 0.4f, 1.f)),
                                ag::leaf(patterned(1, 3, 0.4f, 2.f))};
    ag::Var s = ag::stackRows(leaves);
    ASSERT_EQ(s.value().rows(), 4);
    EXPECT_FLOAT_EQ(s.value().at(0, 1), leaves[0].value().at(0, 1));
    EXPECT_FLOAT_EQ(s.value().at(2, 2), leaves[1].value().at(1, 2));
    EXPECT_FLOAT_EQ(s.value().at(3, 0), leaves[2].value().at(0, 0));

    expectGradientsMatch(leaves, [&] {
        ag::Var v = ag::stackRows(leaves);
        return ag::sumAllOp(ag::mul(v, v));
    });

    EXPECT_THROW(ag::stackRows({}), PanicError);
    ag::Var wide = ag::leaf(Tensor(1, 4, 1.0f));
    EXPECT_THROW(ag::stackRows({leaves[0], wide}), PanicError);
}

TEST(Autograd, ScatterRowsValuesAndGradients)
{
    std::vector<ag::Var> leaves{ag::leaf(patterned(3, 2, 0.5f))};
    // Repeated target index accumulates; row 1 stays zero.
    ag::Var s = ag::scatterRows(leaves[0], {0, 2, 0}, 4);
    ASSERT_EQ(s.value().rows(), 4);
    EXPECT_FLOAT_EQ(s.value().at(0, 1),
                    leaves[0].value().at(0, 1) +
                        leaves[0].value().at(2, 1));
    EXPECT_FLOAT_EQ(s.value().at(1, 0), 0.0f);
    EXPECT_FLOAT_EQ(s.value().at(2, 0), leaves[0].value().at(1, 0));

    expectGradientsMatch(leaves, [&] {
        ag::Var v = ag::scatterRows(leaves[0], {0, 2, 0}, 4);
        return ag::sumAllOp(ag::mul(v, v));
    });

    EXPECT_THROW(ag::scatterRows(leaves[0], {0, 1}, 4), PanicError);
    EXPECT_THROW(ag::scatterRows(leaves[0], {0, 1, 4}, 4),
                 PanicError);
}

TEST(Autograd, ScatterRowsInvertsGatherRows)
{
    ag::Var table = ag::leaf(patterned(4, 3, 0.7f));
    ag::Var g = ag::gatherRows(table, {2, 0});
    ag::Var back = ag::scatterRows(g, {2, 0}, 4);
    EXPECT_FLOAT_EQ(back.value().at(2, 1), table.value().at(2, 1));
    EXPECT_FLOAT_EQ(back.value().at(0, 0), table.value().at(0, 0));
    EXPECT_FLOAT_EQ(back.value().at(1, 0), 0.0f);
}

TEST(Autograd, RowSliceValuesAndGradients)
{
    std::vector<ag::Var> leaves{ag::leaf(patterned(5, 3, 0.6f))};
    ag::Var s = ag::rowSlice(leaves[0], 1, 2);
    ASSERT_EQ(s.value().rows(), 2);
    EXPECT_FLOAT_EQ(s.value().at(0, 2), leaves[0].value().at(1, 2));
    EXPECT_FLOAT_EQ(s.value().at(1, 0), leaves[0].value().at(2, 0));

    expectGradientsMatch(leaves, [&] {
        // Overlapping slices exercise accumulation into the source.
        ag::Var a = ag::rowSlice(leaves[0], 1, 2);
        ag::Var b = ag::rowSlice(leaves[0], 2, 2);
        return ag::sumAllOp(ag::mul(ag::add(a, b), a));
    });

    EXPECT_THROW(ag::rowSlice(leaves[0], 4, 2), PanicError);
    EXPECT_THROW(ag::rowSlice(leaves[0], -1, 1), PanicError);
    EXPECT_THROW(ag::rowSlice(leaves[0], 0, 0), PanicError);
}

TEST(Autograd, SegmentSumValuesAndGradients)
{
    std::vector<ag::Var> leaves{ag::leaf(patterned(5, 2, 0.5f))};
    // Segments: [0,2) [2,2) empty [2,5).
    std::vector<int> offsets{0, 2, 2, 5};
    ag::Var s = ag::segmentSum(leaves[0], offsets);
    ASSERT_EQ(s.value().rows(), 3);
    EXPECT_FLOAT_EQ(s.value().at(0, 0),
                    leaves[0].value().at(0, 0) +
                        leaves[0].value().at(1, 0));
    EXPECT_FLOAT_EQ(s.value().at(1, 0), 0.0f); // empty segment
    EXPECT_FLOAT_EQ(s.value().at(2, 1),
                    leaves[0].value().at(2, 1) +
                        leaves[0].value().at(3, 1) +
                        leaves[0].value().at(4, 1));

    expectGradientsMatch(leaves, [&] {
        ag::Var v = ag::segmentSum(leaves[0], offsets);
        return ag::sumAllOp(ag::mul(v, v));
    });

    EXPECT_THROW(ag::segmentSum(leaves[0], {0, 2}), PanicError);
    EXPECT_THROW(ag::segmentSum(leaves[0], {0, 3, 2, 5}),
                 PanicError);
    EXPECT_THROW(ag::segmentSum(leaves[0], {5}), PanicError);
}

TEST(Autograd, SegmentSumWithInitGradients)
{
    std::vector<ag::Var> leaves{ag::leaf(patterned(4, 2, 0.5f)),
                                ag::leaf(patterned(2, 2, 0.5f, 1.f))};
    std::vector<int> offsets{0, 3, 4};
    ag::Var s = ag::segmentSum(leaves[0], offsets, leaves[1]);
    EXPECT_FLOAT_EQ(s.value().at(1, 1),
                    leaves[1].value().at(1, 1) +
                        leaves[0].value().at(3, 1));

    expectGradientsMatch(leaves, [&] {
        ag::Var v = ag::segmentSum(leaves[0], offsets, leaves[1]);
        return ag::sumAllOp(ag::mul(v, v));
    });

    ag::Var bad_init = ag::leaf(Tensor(3, 2, 0.0f));
    EXPECT_THROW(ag::segmentSum(leaves[0], offsets, bad_init),
                 PanicError);
}

TEST(Autograd, ReductionGradients)
{
    std::vector<ag::Var> leaves{ag::leaf(patterned(4, 3, 0.6f))};
    expectGradientsMatch(leaves, [&] {
        ag::Var s = ag::sumRowsOp(leaves[0]);
        return ag::sumAllOp(ag::mul(s, s));
    });
    expectGradientsMatch(leaves, [&] {
        ag::Var m = ag::meanRowsOp(leaves[0]);
        return ag::sumAllOp(ag::mul(m, m));
    });
}

TEST(Autograd, SpmmGradients)
{
    auto adj = std::make_shared<CsrMatrix>(CsrMatrix::fromCoo(
        3, 3,
        {{0, 0, 1.0f}, {0, 1, 0.5f}, {1, 2, 2.0f}, {2, 0, -1.0f}}));
    std::vector<ag::Var> leaves{ag::leaf(patterned(3, 2, 0.5f))};
    expectGradientsMatch(leaves, [&] {
        ag::Var h = ag::spmm(adj, leaves[0]);
        return ag::sumAllOp(ag::mul(h, h));
    });
}

TEST(Autograd, BceWithLogitsValueAndGradient)
{
    // Known value: logit 0 -> loss log(2).
    ag::Var z0 = ag::leaf(Tensor(1, 1, 0.0f));
    Tensor y(1, 1, 1.0f);
    ag::Var l = ag::bceWithLogits(z0, y);
    EXPECT_NEAR(l.value().at(0, 0), std::log(2.0f), 1e-5f);

    std::vector<ag::Var> leaves{ag::leaf(patterned(4, 1, 1.2f))};
    Tensor targets = Tensor::fromVector({1, 0, 1, 0}, 4, 1);
    expectGradientsMatch(leaves, [&] {
        return ag::bceWithLogits(leaves[0], targets);
    });
}

TEST(Autograd, BceShapeMismatchFatal)
{
    ag::Var z = ag::leaf(Tensor(2, 1, 0.0f));
    EXPECT_THROW(ag::bceWithLogits(z, Tensor(3, 1, 0.0f)),
                 FatalError);
}

TEST(Autograd, MseLossGradients)
{
    std::vector<ag::Var> leaves{ag::leaf(patterned(2, 3, 0.9f))};
    Tensor target = patterned(2, 3, 0.2f, 4.0f);
    expectGradientsMatch(leaves, [&] {
        return ag::mseLoss(leaves[0], target);
    });
}

TEST(Autograd, FanOutAccumulatesGradients)
{
    // y = x + x => dy/dx = 2.
    ag::Var x = ag::leaf(Tensor(1, 1, 3.0f));
    ag::Var y = ag::add(x, x);
    ag::backward(ag::sumAllOp(y));
    EXPECT_FLOAT_EQ(x.grad().at(0, 0), 2.0f);
}

TEST(Autograd, ConstantsReceiveNoGradient)
{
    ag::Var c = ag::constant(Tensor(2, 2, 1.0f));
    ag::Var x = ag::leaf(Tensor(2, 2, 2.0f));
    ag::Var y = ag::sumAllOp(ag::mul(c, x));
    ag::backward(y);
    EXPECT_FALSE(c.requiresGrad());
    EXPECT_TRUE(x.requiresGrad());
    EXPECT_FLOAT_EQ(x.grad().at(0, 0), 1.0f);
}

TEST(Autograd, BackwardRequiresScalar)
{
    ag::Var x = ag::leaf(Tensor(2, 2, 1.0f));
    EXPECT_THROW(ag::backward(x), FatalError);
}

TEST(Autograd, ZeroGradClears)
{
    ag::Var x = ag::leaf(Tensor(1, 1, 1.0f));
    ag::backward(ag::sumAllOp(ag::mul(x, x)));
    EXPECT_NE(x.grad().at(0, 0), 0.0f);
    x.zeroGrad();
    EXPECT_FLOAT_EQ(x.grad().at(0, 0), 0.0f);
}

TEST(Autograd, DeepChainGradient)
{
    // Long chains exercise the iterative topological sort.
    ag::Var x = ag::leaf(Tensor(1, 4, 0.01f));
    ag::Var h = x;
    for (int i = 0; i < 200; ++i)
        h = ag::scale(ag::add(h, x), 0.99f);
    ag::backward(ag::sumAllOp(h));
    EXPECT_GT(x.grad().at(0, 0), 0.0f);
}

} // namespace
} // namespace ccsa
