/**
 * @file
 * Property tests over the corpus generator: every family x variant x
 * seed must produce source that lexes, parses, prunes, and contains a
 * main function; styles must actually vary the structure.
 */

#include <set>

#include <gtest/gtest.h>

#include "codegen/generator.hh"
#include "frontend/parser.hh"

namespace ccsa
{
namespace
{

class FamilyVariantTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(FamilyVariantTest, GeneratesParseableStructuredSource)
{
    auto [family_idx, variant] = GetParam();
    auto family = static_cast<ProblemFamily>(family_idx);
    auto generator = makeGenerator(family, /*problem_seed=*/0);
    ASSERT_GE(generator->numVariants(), 2);
    if (variant >= generator->numVariants())
        GTEST_SKIP() << "variant not defined for this family";

    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        Rng rng(seed);
        GeneratedSolution sol = generator->generateVariant(variant,
                                                           rng);
        EXPECT_EQ(sol.algoVariant, variant);
        ASSERT_FALSE(sol.source.empty());

        Ast full = parseSource(sol.source);
        Ast pruned = pruneToFunctions(full);
        // A real program: main plus meaningful structure.
        bool has_main = false;
        for (int id : pruned.nodesOfKind(NodeKind::FunctionDef))
            if (pruned.node(id).text == "main")
                has_main = true;
        EXPECT_TRUE(has_main) << sol.source;
        EXPECT_GE(pruned.size(), 30) << "suspiciously small program";
        EXPECT_GE(pruned.depth(), 4);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyVariantTest,
    ::testing::Combine(::testing::Range(0, kNumFamilies),
                       ::testing::Values(0, 1, 2)));

TEST(Codegen, RandomVariantMixCoversAllVariants)
{
    auto generator = makeGenerator(ProblemFamily::C, 0);
    Rng rng(9);
    std::set<int> seen;
    for (int i = 0; i < 60; ++i)
        seen.insert(generator->generate(rng).algoVariant);
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(generator->numVariants()));
}

TEST(Codegen, DifferentSeedsDifferentSources)
{
    auto generator = makeGenerator(ProblemFamily::A, 0);
    Rng rng(1);
    std::set<std::string> sources;
    for (int i = 0; i < 10; ++i)
        sources.insert(generator->generateVariant(2, rng).source);
    // Style knobs must provide real surface diversity.
    EXPECT_GE(sources.size(), 5u);
}

TEST(Codegen, ProblemSeedChangesConstants)
{
    Rng rng1(5), rng2(5);
    auto g0 = makeGenerator(ProblemFamily::B, 0);
    auto g1 = makeGenerator(ProblemFamily::B, 1);
    std::string s0 = g0->generateVariant(0, rng1).source;
    std::string s1 = g1->generateVariant(0, rng2).source;
    EXPECT_NE(s0, s1);
}

TEST(Codegen, DeterministicForFixedSeed)
{
    auto generator = makeGenerator(ProblemFamily::F, 0);
    Rng a(77), b(77);
    EXPECT_EQ(generator->generateVariant(1, a).source,
              generator->generateVariant(1, b).source);
}

TEST(Codegen, FamilyMetadata)
{
    EXPECT_STREQ(familyTag(ProblemFamily::A), "A");
    EXPECT_STREQ(familyTag(ProblemFamily::I), "I");
    EXPECT_STREQ(familyAlgorithms(ProblemFamily::H),
                 "Dynamic programming (DP)");
}

TEST(StyleKnobs, SchemesProduceValidIdentifiers)
{
    for (int scheme = 0; scheme < 4; ++scheme) {
        StyleKnobs k;
        k.nameScheme = scheme;
        for (int level = 0; level < 3; ++level)
            EXPECT_FALSE(k.idx(level).empty());
        EXPECT_FALSE(k.arr().empty());
        EXPECT_FALSE(k.helper().empty());
        EXPECT_FALSE(k.tmp().empty());
    }
    StyleKnobs k;
    k.flushEndl = true;
    EXPECT_EQ(k.eol(), "endl");
    k.flushEndl = false;
    EXPECT_EQ(k.eol(), "\"\\n\"");
    k.useLongLong = true;
    EXPECT_EQ(k.intType(), "long long");
}

TEST(StyleKnobs, RandomKnobsVary)
{
    Rng rng(3);
    std::set<bool> helper_seen, endl_seen;
    for (int i = 0; i < 40; ++i) {
        StyleKnobs k = StyleKnobs::random(rng);
        helper_seen.insert(k.useHelperFunction);
        endl_seen.insert(k.flushEndl);
    }
    EXPECT_EQ(helper_seen.size(), 2u);
    EXPECT_EQ(endl_seen.size(), 2u);
}

} // namespace
} // namespace ccsa
