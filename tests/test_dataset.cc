/**
 * @file
 * Tests for corpus generation, splitting, and pair construction.
 */

#include <set>

#include <gtest/gtest.h>

#include "base/stats.hh"
#include "dataset/corpus.hh"
#include "dataset/pairs.hh"

namespace ccsa
{
namespace
{

Corpus
smallCorpus()
{
    static Corpus corpus = Corpus::generate(
        tableISpec(ProblemFamily::H), 40, 11);
    return corpus;
}

TEST(Corpus, GeneratesRequestedCount)
{
    Corpus corpus = smallCorpus();
    EXPECT_EQ(corpus.size(), 40u);
    EXPECT_EQ(corpus.problems().size(), 1u);
    for (const auto& s : corpus.submissions()) {
        EXPECT_GT(s.runtimeMs, 0.0);
        EXPECT_FALSE(s.source.empty());
        EXPECT_GT(s.ast.size(), 10);
        EXPECT_EQ(s.problemId, 0);
    }
}

TEST(Corpus, RuntimesVary)
{
    Corpus corpus = smallCorpus();
    auto rts = corpus.runtimes();
    Summary s = summarize(rts);
    EXPECT_GT(s.max, 1.5 * s.min)
        << "no runtime variability to learn from";
}

TEST(Corpus, DeterministicForSeed)
{
    Corpus a = Corpus::generate(tableISpec(ProblemFamily::H), 10, 3);
    Corpus b = Corpus::generate(tableISpec(ProblemFamily::H), 10, 3);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.submissions()[i].source, b.submissions()[i].source);
        EXPECT_DOUBLE_EQ(a.submissions()[i].runtimeMs,
                         b.submissions()[i].runtimeMs);
    }
}

TEST(Corpus, SplitDisjointAndComplete)
{
    Corpus corpus = smallCorpus();
    Rng rng(5);
    auto [train, test] = corpus.split(0.75, rng);
    EXPECT_EQ(train.size() + test.size(), corpus.size());
    std::set<int> seen(train.begin(), train.end());
    for (int t : test)
        EXPECT_EQ(seen.count(t), 0u);
    EXPECT_NEAR(static_cast<double>(train.size()) /
                    static_cast<double>(corpus.size()),
                0.75, 0.05);
}

TEST(Corpus, SplitInvalidFractionFatal)
{
    Corpus corpus = smallCorpus();
    Rng rng(5);
    EXPECT_THROW(corpus.split(0.0, rng), FatalError);
    EXPECT_THROW(corpus.split(1.0, rng), FatalError);
}

TEST(Corpus, MixedCorpusSpansProblems)
{
    Corpus corpus = Corpus::generateMixed(4, 6, 21);
    EXPECT_EQ(corpus.size(), 24u);
    EXPECT_EQ(corpus.problems().size(), 4u);
    std::set<int> pids;
    for (const auto& s : corpus.submissions())
        pids.insert(s.problemId);
    EXPECT_EQ(pids.size(), 4u);
}

TEST(MpSpec, DerivedProblemsDiffer)
{
    ProblemSpec a = mpProblemSpec(0);
    ProblemSpec b = mpProblemSpec(9);
    EXPECT_EQ(a.family, b.family); // same base family (index % 9)
    EXPECT_NE(a.problemSeed, b.problemSeed);
    EXPECT_NE(a.judge.testSizes.back(), b.judge.testSizes.back());
    EXPECT_THROW(mpProblemSpec(-1), FatalError);
}

TEST(Pairs, LabelsFollowEquationOne)
{
    Corpus corpus = smallCorpus();
    std::vector<int> idx;
    for (std::size_t i = 0; i < corpus.size(); ++i)
        idx.push_back(static_cast<int>(i));
    Rng rng(7);
    PairOptions opt;
    auto pairs = buildPairs(corpus.submissions(), idx, opt, rng);
    ASSERT_FALSE(pairs.empty());
    for (const auto& p : pairs) {
        double t_first = corpus.submissions()[p.first].runtimeMs;
        double t_second = corpus.submissions()[p.second].runtimeMs;
        EXPECT_EQ(p.label >= 0.5f, t_first >= t_second);
        EXPECT_NE(p.first, p.second);
    }
}

TEST(Pairs, SymmetricDoublesOneWay)
{
    Corpus corpus = smallCorpus();
    std::vector<int> idx;
    for (int i = 0; i < 12; ++i)
        idx.push_back(i);
    PairOptions sym;
    sym.symmetric = true;
    PairOptions one;
    one.symmetric = false;
    Rng r1(9), r2(9);
    auto sym_pairs = buildPairs(corpus.submissions(), idx, sym, r1);
    auto one_pairs = buildPairs(corpus.submissions(), idx, one, r2);
    EXPECT_EQ(sym_pairs.size(), 12u * 11u);
    EXPECT_EQ(one_pairs.size(), 12u * 11u / 2u);
}

TEST(Pairs, RatioSubsamples)
{
    Corpus corpus = smallCorpus();
    std::vector<int> idx;
    for (std::size_t i = 0; i < corpus.size(); ++i)
        idx.push_back(static_cast<int>(i));
    PairOptions opt;
    opt.ratio = 0.25;
    Rng rng(13);
    auto pairs = buildPairs(corpus.submissions(), idx, opt, rng);
    double full = 40.0 * 39.0;
    EXPECT_NEAR(static_cast<double>(pairs.size()) / full, 0.25,
                0.07);
}

TEST(Pairs, MaxPairsCaps)
{
    Corpus corpus = smallCorpus();
    std::vector<int> idx;
    for (std::size_t i = 0; i < corpus.size(); ++i)
        idx.push_back(static_cast<int>(i));
    PairOptions opt;
    opt.maxPairs = 50;
    Rng rng(15);
    auto pairs = buildPairs(corpus.submissions(), idx, opt, rng);
    EXPECT_EQ(pairs.size(), 50u);
}

TEST(Pairs, MinGapFiltersCloseRuntimes)
{
    Corpus corpus = smallCorpus();
    std::vector<int> idx;
    for (std::size_t i = 0; i < corpus.size(); ++i)
        idx.push_back(static_cast<int>(i));
    PairOptions opt;
    opt.minGapMs = 5.0;
    Rng rng(17);
    auto pairs = buildPairs(corpus.submissions(), idx, opt, rng);
    for (const auto& p : pairs) {
        double gap = std::abs(corpus.submissions()[p.first].runtimeMs -
                              corpus.submissions()[p.second].runtimeMs);
        EXPECT_GE(gap, 5.0);
    }
}

TEST(Pairs, BalancedClasses)
{
    Corpus corpus = smallCorpus();
    std::vector<int> idx;
    for (std::size_t i = 0; i < corpus.size(); ++i)
        idx.push_back(static_cast<int>(i));
    PairOptions opt; // symmetric => exactly balanced up to ties
    Rng rng(19);
    auto pairs = buildPairs(corpus.submissions(), idx, opt, rng);
    EXPECT_NEAR(positiveFraction(pairs), 0.5, 0.05);
}

TEST(Pairs, InvalidRatioFatal)
{
    Corpus corpus = smallCorpus();
    PairOptions opt;
    opt.ratio = 0.0;
    Rng rng(21);
    std::vector<int> idx{0, 1};
    EXPECT_THROW(buildPairs(corpus.submissions(), idx, opt, rng),
                 FatalError);
}

TEST(Pairs, CrossProblemExcludedByDefault)
{
    Corpus corpus = Corpus::generateMixed(2, 5, 23);
    std::vector<int> idx;
    for (std::size_t i = 0; i < corpus.size(); ++i)
        idx.push_back(static_cast<int>(i));
    PairOptions opt;
    Rng rng(25);
    auto pairs = buildPairs(corpus.submissions(), idx, opt, rng);
    for (const auto& p : pairs)
        EXPECT_EQ(corpus.submissions()[p.first].problemId,
                  corpus.submissions()[p.second].problemId);

    opt.withinProblemOnly = false;
    Rng rng2(25);
    auto all = buildPairs(corpus.submissions(), idx, opt, rng2);
    EXPECT_GT(all.size(), pairs.size());
}

} // namespace
} // namespace ccsa
