/**
 * @file
 * Tests for corpus export/import (the paper's published-dataset
 * interchange format).
 */

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include <unistd.h>

#include "dataset/io.hh"
#include "dataset/pairs.hh"

namespace ccsa
{
namespace
{

namespace fs = std::filesystem;

class DatasetIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("ccsa_io_test_" + std::to_string(::getpid())))
            .string();
    }

    void
    TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    std::string dir_;
};

TEST_F(DatasetIoTest, RoundTripPreservesEverything)
{
    Corpus corpus = Corpus::generate(tableISpec(ProblemFamily::H),
                                     12, 5);
    exportCorpus(corpus, dir_);

    EXPECT_TRUE(fs::exists(fs::path(dir_) / "index.csv"));
    EXPECT_TRUE(fs::exists(fs::path(dir_) / "sub_0.cpp"));

    auto loaded = importSubmissions(dir_);
    ASSERT_EQ(loaded.size(), corpus.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        const Submission& a = corpus.submissions()[i];
        const Submission& b = loaded[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.problemId, b.problemId);
        EXPECT_EQ(a.source, b.source);
        EXPECT_EQ(a.algoVariant, b.algoVariant);
        EXPECT_NEAR(a.runtimeMs, b.runtimeMs,
                    1e-6 * std::max(a.runtimeMs, 1.0));
        // Re-parsed AST matches the original structurally.
        EXPECT_EQ(a.ast.toSExpression(), b.ast.toSExpression());
    }
}

TEST_F(DatasetIoTest, ImportMissingDirectoryFatal)
{
    EXPECT_THROW(importSubmissions(dir_ + "_nonexistent"),
                 FatalError);
}

TEST_F(DatasetIoTest, ImportMalformedIndexFatal)
{
    fs::create_directories(dir_);
    {
        std::ofstream f(fs::path(dir_) / "index.csv");
        f << "id,problem_id,runtime_ms,algo_variant,source_file\n";
        f << "not,enough\n";
    }
    EXPECT_THROW(importSubmissions(dir_), FatalError);
}

TEST_F(DatasetIoTest, ImportMissingSourceFatal)
{
    fs::create_directories(dir_);
    {
        std::ofstream f(fs::path(dir_) / "index.csv");
        f << "id,problem_id,runtime_ms,algo_variant,source_file\n";
        f << "0,0,12.5,1,sub_0.cpp\n";
    }
    EXPECT_THROW(importSubmissions(dir_), FatalError);
}

TEST_F(DatasetIoTest, LoadedSubmissionsTrainable)
{
    Corpus corpus = Corpus::generate(tableISpec(ProblemFamily::H),
                                     10, 7);
    exportCorpus(corpus, dir_);
    auto loaded = importSubmissions(dir_);

    // Pairs built from the re-imported corpus carry valid labels.
    std::vector<int> idx;
    for (std::size_t i = 0; i < loaded.size(); ++i)
        idx.push_back(static_cast<int>(i));
    Rng rng(9);
    PairOptions opt;
    auto pairs = buildPairs(loaded, idx, opt, rng);
    EXPECT_FALSE(pairs.empty());
    for (const auto& p : pairs)
        EXPECT_EQ(p.label >= 0.5f,
                  loaded[p.first].runtimeMs >=
                      loaded[p.second].runtimeMs);
}

} // namespace
} // namespace ccsa
