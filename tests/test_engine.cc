/**
 * @file
 * Tests for the serving layer: Status/Result, the ThreadPool, the
 * LRU encoding cache, and the Engine facade — including the three
 * pinned contracts: batch probabilities bitwise-match the legacy
 * per-pair path, cache hits return identical latents while the hit
 * counter advances, and results are invariant to the thread count.
 */

#include <gtest/gtest.h>

#include <atomic>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "base/rng.hh"
#include "eval/metrics.hh"
#include "frontend/parser.hh"
#include "oracle.hh"
#include "serve/engine.hh"
#include "serve/latent_codec.hh"
#include "serve/latent_f16_dispatch.hh"

namespace ccsa
{
namespace
{

Ast
tinyProgram(int loops)
{
    std::string src = "int main() {\n int n;\n cin >> n;\n";
    for (int i = 0; i < loops; ++i) {
        std::string v = "i" + std::to_string(i);
        src += " for (int " + v + " = 0; " + v + " < n; " + v +
            "++) { int z" + std::to_string(i) + " = " + v + "; }\n";
    }
    src += " return 0;\n}\n";
    return parseAndPrune(src);
}

Engine::Options
tinyOptions()
{
    return Engine::Options()
        .withEmbedDim(8)
        .withHiddenDim(8)
        .withSeed(7)
        .withThreads(1);
}

// ------------------------------------------------------- Status

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::Ok);
    EXPECT_EQ(s.toString(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage)
{
    Status s = Status::invalidArgument("bad tree");
    EXPECT_FALSE(s.isOk());
    EXPECT_FALSE(static_cast<bool>(s));
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_EQ(s.toString(), "invalid-argument: bad tree");
}

TEST(Result, HoldsValueOrStatus)
{
    Result<int> ok(42);
    ASSERT_TRUE(ok.isOk());
    EXPECT_EQ(ok.value(), 42);

    Result<int> err(Status::ioError("disk on fire"));
    ASSERT_FALSE(err.isOk());
    EXPECT_EQ(err.status().code(), StatusCode::IoError);
    EXPECT_THROW(err.value(), PanicError);
}

// ---------------------------------------------------- ThreadPool

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> counts(257);
        for (auto& c : counts)
            c = 0;
        pool.parallelFor(counts.size(), [&](std::size_t i) {
            counts[i].fetch_add(1);
        });
        for (const auto& c : counts)
            EXPECT_EQ(c.load(), 1);
    }
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(16, [](std::size_t i) {
            if (i == 7)
                fatal("boom");
        }),
        FatalError);
}

TEST(ThreadPool, ZeroIterationsIsANoop)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, NegativeThreadCountClampsToInline)
{
    ThreadPool pool(-5);
    EXPECT_EQ(pool.workerCount(), 0); // clamped to 1 => inline
    std::atomic<int> ran{0};
    pool.parallelFor(4, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, SubmitReportsOkAndRunsTheTask)
{
    for (int threads : {1, 3}) {
        ThreadPool pool(threads);
        std::atomic<bool> ran{false};
        ASSERT_TRUE(pool.submit([&] { ran = true; }).isOk());
        pool.shutdown(); // drains the task before joining
        EXPECT_TRUE(ran.load());
    }
}

TEST(ThreadPool, ShutdownIsIdempotentAndRejectsNewWork)
{
    ThreadPool pool(2);
    EXPECT_FALSE(pool.isShutdown());
    pool.shutdown();
    pool.shutdown(); // double-shutdown is a safe no-op
    EXPECT_TRUE(pool.isShutdown());
    EXPECT_EQ(pool.workerCount(), 0);

    std::atomic<bool> ran{false};
    Status s = pool.submit([&] { ran = true; });
    ASSERT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::Unavailable);
    EXPECT_FALSE(ran.load()); // rejected task never runs

    EXPECT_THROW(pool.parallelFor(4, [](std::size_t) {}),
                 FatalError);
}

// ------------------------------------------------- EncodingCache

TEST(EncodingCache, DigestSeesStructureNotText)
{
    Ast a = tinyProgram(2);
    Ast b = tinyProgram(2);
    Ast c = tinyProgram(3);
    EXPECT_EQ(digestAst(a), digestAst(b));
    EXPECT_FALSE(digestAst(a) == digestAst(c));
}

TEST(EncodingCache, LruEvictsOldestFirst)
{
    EncodingCache cache(2);
    EncodingKey k1{1, {1, 1}}, k2{1, {2, 2}}, k3{1, {3, 3}};
    cache.insert(k1, Tensor(1, 1, 1.0f));
    cache.insert(k2, Tensor(1, 1, 2.0f));
    ASSERT_TRUE(cache.lookup(k1)); // refresh k1: k2 is LRU
    cache.insert(k3, Tensor(1, 1, 3.0f)); // evicts k2
    EXPECT_TRUE(cache.lookup(k1));
    EXPECT_FALSE(cache.lookup(k2));
    EXPECT_TRUE(cache.lookup(k3));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(EncodingCache, ModelNamespacesAreIsolated)
{
    // The same digest under two model-version namespaces is two
    // distinct entries — the latent-collision hazard the registry
    // refactor retires (ISSUE 5): before namespaced keys, two
    // models sharing one cache silently served each other's rows.
    EncodingCache cache(8);
    AstDigest d{7, 7};
    cache.insert(EncodingKey{1, d}, Tensor(1, 1, 1.0f));
    EXPECT_FALSE(cache.lookup(EncodingKey{2, d}));
    cache.insert(EncodingKey{2, d}, Tensor(1, 1, 2.0f));
    EXPECT_EQ(cache.size(), 2u);
    Tensor got(1, 1);
    ASSERT_TRUE(cache.lookup(EncodingKey{1, d}, &got));
    EXPECT_FLOAT_EQ(got.at(0, 0), 1.0f);
    ASSERT_TRUE(cache.lookup(EncodingKey{2, d}, &got));
    EXPECT_FLOAT_EQ(got.at(0, 0), 2.0f);

    // Per-namespace counters partition the global ones.
    EncodingCache::NamespaceStats ns1 = cache.namespaceStats(1);
    EncodingCache::NamespaceStats ns2 = cache.namespaceStats(2);
    EXPECT_EQ(ns1.hits, 1u);
    EXPECT_EQ(ns2.hits, 1u);
    EXPECT_EQ(ns2.misses, 1u);
    EXPECT_EQ(ns1.residents, 1u);
    EXPECT_EQ(ns2.residents, 1u);
    EXPECT_EQ(cache.stats().hits, ns1.hits + ns2.hits);
    EXPECT_EQ(cache.stats().misses, ns1.misses + ns2.misses);

    // clearNamespace drops exactly one tenant.
    cache.clearNamespace(1);
    EXPECT_FALSE(cache.lookup(EncodingKey{1, d}));
    EXPECT_TRUE(cache.lookup(EncodingKey{2, d}));
    EXPECT_EQ(cache.namespaceStats(1).residents, 0u);
}

TEST(EncodingCache, EvictionsAttributeToTheEvictedNamespace)
{
    EncodingCache cache(2);
    cache.insert(EncodingKey{1, {1, 1}}, Tensor(1, 1, 1.0f));
    cache.insert(EncodingKey{2, {2, 2}}, Tensor(1, 1, 2.0f));
    // A hot namespace may push a cold one's entry out; the eviction
    // is charged to the VICTIM's namespace.
    cache.insert(EncodingKey{2, {3, 3}}, Tensor(1, 1, 3.0f));
    EXPECT_EQ(cache.namespaceStats(1).evictions, 1u);
    EXPECT_EQ(cache.namespaceStats(1).residents, 0u);
    EXPECT_EQ(cache.namespaceStats(2).evictions, 0u);
    EXPECT_EQ(cache.namespaceStats(2).residents, 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

// ------------------------------------- ShardedEncodingCache (ISSUE 4)

/** Deterministic "random" program: structure varies with both knobs
 * so distinct (loops, pad) pairs digest differently. */
Ast
variantProgram(int loops, int pad)
{
    std::string src = "int main() {\n int n;\n cin >> n;\n";
    for (int p = 0; p < pad; ++p)
        src += " int pad" + std::to_string(p) + " = " +
            std::to_string(p) + ";\n";
    for (int i = 0; i < loops; ++i) {
        std::string v = "i" + std::to_string(i);
        src += " for (int " + v + " = 0; " + v + " < n; " + v +
            "++) { int z" + std::to_string(i) + " = " + v + "; }\n";
    }
    src += " return 0;\n}\n";
    return parseAndPrune(src);
}

/** A randomized forest of distinct-by-digest trees. */
std::vector<Ast>
randomForest(Rng& rng, std::size_t count)
{
    std::vector<Ast> forest;
    std::vector<AstDigest> seen;
    while (forest.size() < count) {
        Ast tree =
            variantProgram(rng.uniformInt(0, 7), rng.uniformInt(0, 7));
        AstDigest d = digestAst(tree);
        bool fresh = true;
        for (const AstDigest& s : seen)
            fresh = fresh && !(s == d);
        if (!fresh)
            continue;
        seen.push_back(d);
        forest.push_back(std::move(tree));
    }
    return forest;
}

TEST(ShardedEncodingCache, EveryDigestRoutesToExactlyOneShard)
{
    Rng rng(41);
    std::vector<Ast> forest = randomForest(rng, 24);
    for (std::size_t n : {1u, 2u, 3u, 4u, 8u}) {
        for (const Ast& tree : forest) {
            AstDigest d = digestAst(tree);
            std::size_t shard = ShardedEncodingCache::shardOf(d, n);
            EXPECT_LT(shard, n);
            // Routing is a pure function of the digest: repeated
            // calls and structurally identical trees agree.
            EXPECT_EQ(ShardedEncodingCache::shardOf(d, n), shard);
            EXPECT_EQ(
                ShardedEncodingCache::shardOf(digestAst(tree), n),
                shard);
        }
    }
    // Sanity: with a few shards, a 24-tree forest actually uses more
    // than one of them (the partition is not degenerate).
    std::vector<bool> used(4, false);
    for (const Ast& tree : forest)
        used[ShardedEncodingCache::shardOf(digestAst(tree), 4)] =
            true;
    int distinct = 0;
    for (bool u : used)
        distinct += u ? 1 : 0;
    EXPECT_GT(distinct, 1);
}

TEST(ShardedEncodingCache, PerShardCountersSumToUnshardedCounters)
{
    Rng rng(42);
    std::vector<Ast> forest = randomForest(rng, 20);
    std::vector<AstDigest> digests;
    for (const Ast& tree : forest)
        digests.push_back(digestAst(tree));

    // Identical randomized lookup/insert-on-miss streams against a
    // 4-way partitioned cache and an unsharded one, both roomy
    // enough never to evict: partitioning the key space must
    // partition the counters, nothing more.
    ShardedEncodingCache sharded(4, 64);
    ShardedEncodingCache flat(1, 256);
    Rng stream(43);
    for (int step = 0; step < 400; ++step) {
        const AstDigest& d =
            digests[static_cast<std::size_t>(stream.uniformInt(
                0, static_cast<int>(digests.size()) - 1))];
        EncodingKey key{1, d};
        Tensor out;
        bool hitSharded = sharded.lookup(key, &out);
        bool hitFlat = flat.lookup(key, &out);
        EXPECT_EQ(hitSharded, hitFlat) << "step " << step;
        if (!hitSharded) {
            sharded.insert(key, Tensor(1, 4, 1.0f));
            flat.insert(key, Tensor(1, 4, 1.0f));
        }
    }

    EncodingCache::Stats summed;
    std::size_t sizeSum = 0;
    for (std::size_t s = 0; s < sharded.numShards(); ++s) {
        EncodingCache::Stats part = sharded.shardStats(s);
        summed.hits += part.hits;
        summed.misses += part.misses;
        summed.evictions += part.evictions;
        sizeSum += sharded.shardSize(s);
    }
    EncodingCache::Stats unsharded = flat.stats();
    EXPECT_EQ(summed.hits, unsharded.hits);
    EXPECT_EQ(summed.misses, unsharded.misses);
    EXPECT_EQ(summed.evictions, unsharded.evictions);
    EXPECT_EQ(summed.evictions, 0u);
    EXPECT_EQ(sizeSum, flat.size());
    // The aggregate accessor reports exactly the per-shard sums.
    EXPECT_EQ(sharded.stats().hits, summed.hits);
    EXPECT_EQ(sharded.stats().misses, summed.misses);
    EXPECT_EQ(sharded.size(), sizeSum);
}

TEST(ShardedEncodingCache, EvictionInOneShardNeverInvalidatesAnother)
{
    Rng rng(44);
    std::vector<Ast> forest = randomForest(rng, 40);
    std::vector<AstDigest> shard0Owned, shard1Owned;
    for (const Ast& tree : forest) {
        AstDigest d = digestAst(tree);
        if (ShardedEncodingCache::shardOf(d, 2) == 0)
            shard0Owned.push_back(d);
        else
            shard1Owned.push_back(d);
    }
    ASSERT_GE(shard0Owned.size(), 4u);
    ASSERT_GE(shard1Owned.size(), 2u);

    ShardedEncodingCache cache(2, 2);
    // Resident entries on shard 1...
    cache.insert(EncodingKey{1, shard1Owned[0]}, Tensor(1, 4, 1.0f));
    cache.insert(EncodingKey{1, shard1Owned[1]}, Tensor(1, 4, 2.0f));
    // ...then flood shard 0 far past its capacity.
    for (const AstDigest& d : shard0Owned)
        cache.insert(EncodingKey{1, d}, Tensor(1, 4, 3.0f));

    EXPECT_GT(cache.shardStats(0).evictions, 0u);
    EXPECT_EQ(cache.shardStats(1).evictions, 0u);
    Tensor out;
    EXPECT_TRUE(cache.lookup(EncodingKey{1, shard1Owned[0]}, &out));
    EXPECT_TRUE(cache.lookup(EncodingKey{1, shard1Owned[1]}, &out));
    EXPECT_EQ(cache.shardSize(0), 2u); // at its own capacity
    EXPECT_EQ(cache.shardSize(1), 2u); // untouched by the flood
}

TEST(Engine, ShardedCacheServesIdenticalLatentsAndPartitionsKeys)
{
    Rng rng(45);
    std::vector<Ast> forest = randomForest(rng, 12);
    std::vector<const Ast*> ptrs;
    for (const Ast& tree : forest)
        ptrs.push_back(&tree);

    Engine flat(tinyOptions());
    Engine sharded(tinyOptions().withCacheShards(4));
    auto flatLatents = flat.encodeBatch(ptrs);
    auto shardedLatents = sharded.encodeBatch(ptrs);
    ASSERT_TRUE(flatLatents.isOk());
    ASSERT_TRUE(shardedLatents.isOk());
    for (std::size_t i = 0; i < ptrs.size(); ++i)
        EXPECT_FLOAT_EQ(shardedLatents.value()[i].maxAbsDiff(
                            flatLatents.value()[i]),
                        0.0f)
            << "tree " << i;

    // Every distinct tree is resident on exactly one partition.
    EXPECT_EQ(sharded.cache().size(), forest.size());
    std::size_t perShard = 0;
    for (std::size_t s = 0; s < sharded.cache().numShards(); ++s)
        perShard += sharded.cache().shardSize(s);
    EXPECT_EQ(perShard, forest.size());

    // A second pass is all hits on both layouts.
    ASSERT_TRUE(sharded.encodeBatch(ptrs).isOk());
    EXPECT_EQ(sharded.stats().treesEncoded, forest.size());
    EXPECT_GE(sharded.stats().cacheHits, forest.size());
}

// --------------------------------------------------------- Engine

TEST(Engine, CompareManyBitwiseMatchesLegacyPerPairPath)
{
    Engine engine(tinyOptions());
    std::vector<Ast> trees;
    for (int i = 1; i <= 5; ++i)
        trees.push_back(tinyProgram(i));

    std::vector<Engine::PairRequest> requests;
    std::vector<double> legacy;
    for (std::size_t i = 0; i < trees.size(); ++i) {
        for (std::size_t j = 0; j < trees.size(); ++j) {
            if (i == j)
                continue;
            requests.push_back({&trees[i], &trees[j]});
            legacy.push_back(
                perPairProb(engine.model(), trees[i], trees[j]));
        }
    }

    auto batched = engine.compareMany(requests);
    ASSERT_TRUE(batched.isOk());
    ASSERT_EQ(batched.value().size(), legacy.size());
    for (std::size_t k = 0; k < legacy.size(); ++k)
        EXPECT_EQ(batched.value()[k], legacy[k]) << "pair " << k;
}

TEST(Engine, CacheHitsReturnIdenticalLatentsAndAdvanceCounter)
{
    Engine engine(tinyOptions());
    Ast a = tinyProgram(2);
    Ast b = tinyProgram(4);

    auto first = engine.encodeBatch({&a, &b});
    ASSERT_TRUE(first.isOk());
    Engine::Stats cold = engine.stats();
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(cold.treesEncoded, 2u);
    EXPECT_EQ(cold.cacheSize, 2u);

    // A structurally identical copy must hit, not re-encode.
    Ast a_copy = tinyProgram(2);
    auto second = engine.encodeBatch({&a_copy, &b});
    ASSERT_TRUE(second.isOk());
    Engine::Stats warm = engine.stats();
    EXPECT_EQ(warm.cacheHits, 2u);
    EXPECT_EQ(warm.treesEncoded, 2u); // unchanged: all hits

    for (int i = 0; i < 2; ++i) {
        ASSERT_EQ(second.value()[i].cols(),
                  first.value()[i].cols());
        EXPECT_FLOAT_EQ(
            first.value()[i].maxAbsDiff(second.value()[i]), 0.0f);
    }
}

TEST(Engine, ResultsInvariantToThreadPoolSize)
{
    std::vector<Ast> trees;
    for (int i = 1; i <= 8; ++i)
        trees.push_back(tinyProgram(i));
    std::vector<Engine::PairRequest> requests;
    for (std::size_t i = 0; i + 1 < trees.size(); ++i)
        requests.push_back({&trees[i], &trees[i + 1]});

    std::vector<double> reference;
    for (int threads : {1, 2, 8}) {
        Engine engine(tinyOptions().withThreads(threads));
        auto probs = engine.compareMany(requests);
        ASSERT_TRUE(probs.isOk());
        if (reference.empty()) {
            reference = probs.value();
            continue;
        }
        ASSERT_EQ(probs.value().size(), reference.size());
        for (std::size_t k = 0; k < reference.size(); ++k)
            EXPECT_EQ(probs.value()[k], reference[k])
                << "threads=" << threads << " pair " << k;
    }
}

TEST(Engine, ForestBatchedEncodingMatchesSingleTreeEncoding)
{
    // encodeBatch forest-batches cache misses (possibly chunked
    // across pool workers); every latent must equal the one-tree
    // encode of the same AST exactly, whatever shared the batch.
    for (int threads : {1, 3}) {
        Engine engine(tinyOptions().withThreads(threads));
        std::vector<Ast> trees;
        std::vector<const Ast*> ptrs;
        for (int i = 1; i <= 7; ++i) {
            trees.push_back(tinyProgram(i));
        }
        for (const Ast& t : trees)
            ptrs.push_back(&t);

        auto batched = engine.encodeBatch(ptrs);
        ASSERT_TRUE(batched.isOk());
        for (std::size_t i = 0; i < trees.size(); ++i) {
            Tensor solo = engine.model().encode(trees[i]).value();
            EXPECT_FLOAT_EQ(
                batched.value()[i].maxAbsDiff(solo), 0.0f)
                << "threads=" << threads << " tree " << i;
        }
    }
}

TEST(Engine, EncodeBatchDedupsWithinOneCall)
{
    Engine engine(tinyOptions());
    Ast a = tinyProgram(3);
    Ast a_twin = tinyProgram(3);
    auto latents = engine.encodeBatch({&a, &a_twin, &a});
    ASSERT_TRUE(latents.isOk());
    EXPECT_EQ(engine.stats().treesEncoded, 1u);
    EXPECT_FLOAT_EQ(
        latents.value()[0].maxAbsDiff(latents.value()[2]), 0.0f);
}

TEST(Engine, CacheEvictionRespectsCapacity)
{
    Engine engine(tinyOptions().withCacheCapacity(2));
    Ast a = tinyProgram(1), b = tinyProgram(2), c = tinyProgram(3);
    ASSERT_TRUE(engine.encodeBatch({&a, &b, &c}).isOk());
    Engine::Stats s = engine.stats();
    EXPECT_EQ(s.cacheSize, 2u);
    EXPECT_EQ(s.cacheEvictions, 1u);
    // `a` was evicted (oldest): encoding it again is a miss.
    ASSERT_TRUE(engine.encodeBatch({&a}).isOk());
    EXPECT_EQ(engine.stats().treesEncoded, 4u);
}

TEST(Engine, RankOrdersStructurallySlowerCandidatesConsistently)
{
    Engine engine(tinyOptions());
    Ast fast = tinyProgram(1);
    Ast mid = tinyProgram(3);
    Ast slow = tinyProgram(6);
    auto ranking = engine.rank({&mid, &fast, &slow});
    ASSERT_TRUE(ranking.isOk());
    ASSERT_EQ(ranking.value().size(), 3u);

    // An untrained model gives arbitrary probabilities, so pin the
    // internal consistency instead: wins sum to the number of
    // ordered pairs and the list is sorted by wins.
    int total_wins = 0;
    for (const auto& r : ranking.value())
        total_wins += r.wins;
    EXPECT_EQ(total_wins, 6);
    for (std::size_t i = 1; i < ranking.value().size(); ++i)
        EXPECT_GE(ranking.value()[i - 1].wins,
                  ranking.value()[i].wins);
    // Tournament consistency with compareMany on the same engine.
    auto p = engine.compare(fast, slow);
    ASSERT_TRUE(p.isOk());
}

TEST(Engine, RankRejectsDegenerateRequests)
{
    Engine engine(tinyOptions());
    Ast only = tinyProgram(1);
    auto ranking = engine.rank({&only});
    ASSERT_FALSE(ranking.isOk());
    EXPECT_EQ(ranking.status().code(), StatusCode::InvalidArgument);
}

TEST(Engine, NullTreeIsInvalidArgumentNotACrash)
{
    Engine engine(tinyOptions());
    auto latents = engine.encodeBatch({nullptr});
    ASSERT_FALSE(latents.isOk());
    EXPECT_EQ(latents.status().code(), StatusCode::InvalidArgument);
}

TEST(Engine, CompareSourcesReportsParseFailures)
{
    Engine engine(tinyOptions());
    auto bad = engine.compareSources("int main() {", "not c++ at all");
    ASSERT_FALSE(bad.isOk());
    EXPECT_EQ(bad.status().code(), StatusCode::InvalidArgument);

    auto good = engine.compareSources(
        "int main() { return 0; }",
        "int main() { int n; cin >> n;"
        " for (int i = 0; i < n; i++) { int z = i; } return 0; }");
    ASSERT_TRUE(good.isOk());
    EXPECT_GE(good.value(), 0.0);
    EXPECT_LE(good.value(), 1.0);
}

TEST(Engine, SaveLoadRoundTripsThroughStatus)
{
    Engine engine(tinyOptions());
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(2);
    double before = engine.compare(a, b).value();

    std::string path = "ccsa_engine_roundtrip.bin";
    ASSERT_TRUE(engine.save(path).isOk());

    Engine other(tinyOptions().withSeed(999));
    ASSERT_TRUE(other.load(path).isOk());
    EXPECT_NEAR(other.compare(a, b).value(), before, 1e-9);
    std::remove(path.c_str());

    EXPECT_FALSE(engine.save("/nonexistent-ccsa-dir/x.bin").isOk());
    EXPECT_FALSE(engine.load("/nonexistent-ccsa-dir/x.bin").isOk());
}

TEST(Engine, LoadInvalidatesStaleCache)
{
    Engine engine(tinyOptions());
    Ast a = tinyProgram(2);
    ASSERT_TRUE(engine.encodeBatch({&a}).isOk());
    EXPECT_EQ(engine.stats().cacheSize, 1u);

    Engine donor(tinyOptions().withSeed(123));
    std::string path = "ccsa_engine_invalidate.bin";
    ASSERT_TRUE(donor.save(path).isOk());
    ASSERT_TRUE(engine.load(path).isOk());
    EXPECT_EQ(engine.stats().cacheSize, 0u);
    std::remove(path.c_str());
}

TEST(Engine, EvalMetricsAgreeWithPerPairOracle)
{
    // scorePairs(Engine&) must reproduce the per-pair oracle
    // exactly — the property every experiment driver now leans on.
    Engine engine(tinyOptions());
    std::vector<Submission> subs;
    for (int i = 0; i < 5; ++i) {
        Submission s;
        s.id = i;
        s.ast = tinyProgram(i + 1);
        s.runtimeMs = 10.0 * (i + 1);
        subs.push_back(std::move(s));
    }
    std::vector<int> idx{0, 1, 2, 3, 4};
    Rng rng(3);
    PairOptions popt;
    auto pairs = buildPairs(subs, idx, popt, rng);

    auto via_engine = scorePairs(engine, subs, pairs);
    ASSERT_EQ(via_engine.size(), pairs.size());
    for (std::size_t i = 0; i < via_engine.size(); ++i) {
        EXPECT_EQ(via_engine[i].score,
                  perPairProb(engine.model(), subs[pairs[i].first].ast,
                              subs[pairs[i].second].ast));
        EXPECT_EQ(via_engine[i].label, pairs[i].label);
    }
}

// ------------------------------ reduced-precision latent store

TEST(LatentCodec, PrecisionNamesRoundTrip)
{
    LatentPrecision p = LatentPrecision::kFp32;
    EXPECT_TRUE(parseLatentPrecision("fp16", &p));
    EXPECT_EQ(p, LatentPrecision::kFp16);
    EXPECT_TRUE(parseLatentPrecision("int8", &p));
    EXPECT_EQ(p, LatentPrecision::kInt8);
    EXPECT_TRUE(parseLatentPrecision("fp32", &p));
    EXPECT_EQ(p, LatentPrecision::kFp32);

    p = LatentPrecision::kInt8;
    EXPECT_FALSE(parseLatentPrecision("bf16", &p));
    EXPECT_EQ(p, LatentPrecision::kInt8); // untouched on failure
    EXPECT_STREQ(latentPrecisionName(LatentPrecision::kFp16), "fp16");
}

TEST(LatentCodec, Fp16BitsMatchIeeeBinary16)
{
    // Exactly representable values map to their textbook encodings.
    EXPECT_EQ(f32ToF16(0.0f), 0x0000u);
    EXPECT_EQ(f32ToF16(-0.0f), 0x8000u);
    EXPECT_EQ(f32ToF16(1.0f), 0x3C00u);
    EXPECT_EQ(f32ToF16(-2.0f), 0xC000u);
    EXPECT_EQ(f32ToF16(65504.0f), 0x7BFFu); // half's max finite
    EXPECT_EQ(f32ToF16(6.103515625e-05f), 0x0400u); // min normal
    // min subnormal, 2^-24 — regression for the subnormal path
    // shifting by dropped+14 bits (UB above 2^-18, wrong below)
    EXPECT_EQ(f32ToF16(5.9604644775390625e-08f), 0x0001u);
    EXPECT_EQ(f32ToF16(0x1p-15f), 0x0200u);

    // Round-to-nearest-even at the 10-bit mantissa boundary:
    // 1 + 2^-11 is halfway between mant 0 and 1 -> even (1.0);
    // 1 + 3*2^-11 is halfway between mant 1 and 2 -> even (mant 2).
    EXPECT_EQ(f32ToF16(1.0f + 0x1p-11f), 0x3C00u);
    EXPECT_EQ(f32ToF16(1.0f + 3 * 0x1p-11f), 0x3C02u);
    // Same tie rule inside the subnormal range: 3*2^-25 is halfway
    // between codes 1 and 2 -> even (2); 2^-25 ties down to zero.
    EXPECT_EQ(f32ToF16(3 * 0x1p-25f), 0x0002u);
    EXPECT_EQ(f32ToF16(0x1p-25f), 0x0000u);

    // Overflow saturates to inf; NaN stays NaN (quietened).
    EXPECT_EQ(f32ToF16(1e30f), 0x7C00u);
    EXPECT_EQ(f32ToF16(-1e30f), 0xFC00u);
    EXPECT_TRUE(std::isinf(f16ToF32(0x7C00u)));
    EXPECT_TRUE(std::isnan(
        f16ToF32(f32ToF16(std::numeric_limits<float>::quiet_NaN()))));

    // Every non-NaN half is exactly representable as a float, so
    // encode(decode(h)) must be the identity across all 2^16 codes —
    // normals, subnormals, signed zeros, and infinities alike.
    for (std::uint32_t h = 0; h <= 0xFFFFu; ++h) {
        const auto bits = static_cast<std::uint16_t>(h);
        if (((bits >> 10) & 0x1Fu) == 0x1Fu && (bits & 0x3FFu) != 0)
            continue; // NaN payloads are canonicalised
        EXPECT_EQ(f32ToF16(f16ToF32(bits)), bits) << "half " << h;
    }
}

TEST(LatentCodec, F16DispatchHonoursPortableOverride)
{
    // Like the matmul dispatcher, the fp16 codec family latches on
    // first use; assert consistency with the env as this process sees
    // it. The CI forced-portable leg runs with
    // CCSA_F16_KERNEL=portable and lands in the first branch.
    const char* env = std::getenv("CCSA_F16_KERNEL");
    if (env != nullptr && std::strcmp(env, "portable") == 0) {
        EXPECT_STREQ(kernels::activeF16KernelName(), "portable");
    } else if (kernels::f16cAvailable()) {
        EXPECT_STREQ(kernels::activeF16KernelName(), "f16c");
    } else {
        EXPECT_STREQ(kernels::activeF16KernelName(), "portable");
    }
    EXPECT_STREQ(kernels::portableF16Kernels().name, "portable");
}

TEST(LatentCodec, F16PortableRowsMatchScalarConversions)
{
    // The portable row kernels are, by definition, the scalar
    // conversions applied elementwise — including for lengths that
    // are not a multiple of any vector width.
    const auto& portable = kernels::portableF16Kernels();
    std::vector<std::uint16_t> halves;
    for (std::uint32_t h = 0; h < 1000; ++h)
        halves.push_back(static_cast<std::uint16_t>(h * 61));
    std::vector<float> decoded(halves.size());
    portable.decodeRows(halves.data(), decoded.data(), halves.size());
    std::vector<std::uint16_t> back(halves.size());
    portable.encodeRows(decoded.data(), back.data(), decoded.size());
    for (std::size_t i = 0; i < halves.size(); ++i) {
        // Compare BITS, not values: the sweep includes NaN codes,
        // and NaN == NaN is false by definition.
        const float want = f16ToF32(halves[i]);
        std::uint32_t gotBits, wantBits;
        std::memcpy(&gotBits, &decoded[i], sizeof(gotBits));
        std::memcpy(&wantBits, &want, sizeof(wantBits));
        EXPECT_EQ(gotBits, wantBits) << i;
        EXPECT_EQ(back[i], f32ToF16(decoded[i])) << i;
    }
}

TEST(LatentCodec, F16cMatchesPortableOnEveryNonNanHalf)
{
    // Mirror of the exhaustive roundtrip above, across kernel
    // families: for all 2^16 half codes that are not NaN payloads,
    // the F16C decode must be bit-identical to the portable decode,
    // and both families must encode the decoded value back to the
    // original code. NaN payloads are excluded for the same reason
    // as above — portable canonicalises to 0x7E00|sign while the
    // hardware preserves/quiets payloads — but class must survive:
    // every NaN half decodes to a NaN in both families.
    if (!kernels::f16cAvailable())
        GTEST_SKIP() << "no F16C on this CPU/build";
    const auto& portable = kernels::portableF16Kernels();
    const auto& active = kernels::f16cKernels();
    ASSERT_STREQ(active.name, "f16c");

    std::vector<std::uint16_t> codes(0x10000);
    for (std::uint32_t h = 0; h <= 0xFFFFu; ++h)
        codes[h] = static_cast<std::uint16_t>(h);
    std::vector<float> viaPortable(codes.size());
    std::vector<float> viaF16c(codes.size());
    portable.decodeRows(codes.data(), viaPortable.data(),
                        codes.size());
    active.decodeRows(codes.data(), viaF16c.data(), codes.size());

    std::vector<std::uint16_t> backPortable(codes.size());
    std::vector<std::uint16_t> backF16c(codes.size());
    portable.encodeRows(viaPortable.data(), backPortable.data(),
                        viaPortable.size());
    active.encodeRows(viaPortable.data(), backF16c.data(),
                      viaPortable.size());

    for (std::uint32_t h = 0; h <= 0xFFFFu; ++h) {
        const bool isNan =
            ((h >> 10) & 0x1Fu) == 0x1Fu && (h & 0x3FFu) != 0;
        if (isNan) {
            EXPECT_TRUE(std::isnan(viaPortable[h])) << "half " << h;
            EXPECT_TRUE(std::isnan(viaF16c[h])) << "half " << h;
            continue;
        }
        std::uint32_t bp, bf;
        std::memcpy(&bp, &viaPortable[h], sizeof(bp));
        std::memcpy(&bf, &viaF16c[h], sizeof(bf));
        EXPECT_EQ(bf, bp) << "decode half " << h;
        EXPECT_EQ(backPortable[h], codes[h]) << "portable half " << h;
        EXPECT_EQ(backF16c[h], codes[h]) << "f16c half " << h;
    }
}

TEST(LatentCodec, F16cMatchesPortableOffGridAndOnTails)
{
    // Values with no exact half representation exercise the actual
    // rounding hardware: RNE ties, subnormal underflow, and overflow
    // saturation must agree with the portable oracle bit-for-bit.
    // Lengths 1..n also sweep the 8-wide kernel's scalar tail.
    if (!kernels::f16cAvailable())
        GTEST_SKIP() << "no F16C on this CPU/build";
    const auto& portable = kernels::portableF16Kernels();
    const auto& active = kernels::f16cKernels();

    std::vector<float> probes = {
        1.0f / 3.0f,    -1.0f / 3.0f,   0.1f,
        1.0f + 0x1p-11f, 1.0f + 3 * 0x1p-11f,
        3 * 0x1p-25f,   0x1p-25f,       -0x1p-25f,
        5.9604644775390625e-08f, 0x1p-15f,
        65504.0f,       65520.0f,       65519.99f,
        1e30f,          -1e30f,         0.0f,
        -0.0f,          std::numeric_limits<float>::infinity(),
        -std::numeric_limits<float>::infinity(),
        6.103515625e-05f, 6.1e-05f,     1234.5678f};
    Rng rng(77);
    for (int i = 0; i < 300; ++i)
        probes.push_back(
            static_cast<float>(rng.normal(0.0, 1.0)));

    for (std::size_t n = 1; n <= probes.size(); n += 7) {
        std::vector<std::uint16_t> ep(n), ea(n);
        portable.encodeRows(probes.data(), ep.data(), n);
        active.encodeRows(probes.data(), ea.data(), n);
        EXPECT_EQ(ep, ea) << "encode length " << n;
        std::vector<float> dp(n), da(n);
        portable.decodeRows(ep.data(), dp.data(), n);
        active.decodeRows(ep.data(), da.data(), n);
        EXPECT_EQ(std::memcmp(dp.data(), da.data(),
                              n * sizeof(float)),
                  0)
            << "decode length " << n;
    }
}

TEST(LatentCodec, PayloadBytesMatchPrecision)
{
    Tensor t(1, 8, 0.25f);
    EXPECT_EQ(encodeLatent(t, LatentPrecision::kFp32).payloadBytes(),
              8 * sizeof(float));
    EXPECT_EQ(encodeLatent(t, LatentPrecision::kFp16).payloadBytes(),
              8 * sizeof(std::uint16_t));
    EXPECT_EQ(encodeLatent(t, LatentPrecision::kInt8).payloadBytes(),
              8u + 1 * sizeof(float)); // codes + one per-row scale

    // fp32 storage is bit-exact; fp16 of exactly-representable
    // values (0.25 is a power of two) is too.
    for (LatentPrecision p :
         {LatentPrecision::kFp32, LatentPrecision::kFp16}) {
        Tensor back = decodeLatent(encodeLatent(t, p));
        EXPECT_FLOAT_EQ(back.maxAbsDiff(t), 0.0f)
            << latentPrecisionName(p);
    }
}

TEST(LatentCodec, Int8QuantizesPerRowSymmetricAndZeroRowsExactly)
{
    Tensor t(2, 4);
    const float r0[4] = {2.0f, -2.0f, 1.0f, 0.5f};
    for (int c = 0; c < 4; ++c) {
        t.at(0, c) = r0[c];
        t.at(1, c) = 0.0f; // all-zero row: scale 0, exact decode
    }

    StoredLatent s = encodeLatent(t, LatentPrecision::kInt8);
    const auto* scales =
        reinterpret_cast<const float*>(s.payload.data());
    EXPECT_FLOAT_EQ(scales[0], 2.0f / 127.0f);
    EXPECT_FLOAT_EQ(scales[1], 0.0f);
    const auto* codes = reinterpret_cast<const std::int8_t*>(
        s.payload.data() + 2 * sizeof(float));
    EXPECT_EQ(codes[0], 127);  // +maxAbs pins the positive end
    EXPECT_EQ(codes[1], -127); // symmetric range: no -128 code

    Tensor back = decodeLatent(s);
    // Worst-case int8 error is half a quantization step.
    const float step = 2.0f / 127.0f;
    for (int c = 0; c < 4; ++c) {
        EXPECT_NEAR(back.at(0, c), t.at(0, c), step / 2 + 1e-6f);
        EXPECT_EQ(back.at(1, c), 0.0f);
    }

    // Determinism: the same tensor always encodes to the same bytes.
    EXPECT_EQ(encodeLatent(t, LatentPrecision::kInt8).payload,
              s.payload);
}

TEST(ShardedEncodingCache, PropagatesPrecisionToEveryShard)
{
    auto cache =
        ShardedEncodingCache::makeShared(4, 8, LatentPrecision::kFp16);
    EXPECT_EQ(cache->precision(), LatentPrecision::kFp16);

    // A value with no exact half representation comes back on the
    // half grid, whichever shard its digest routes to.
    const float third = 1.0f / 3.0f;
    const float onGrid = f16ToF32(f32ToF16(third));
    ASSERT_NE(third, onGrid);
    for (std::uint64_t d = 0; d < 8; ++d) {
        EncodingKey key{1, {d, d + 100}};
        cache->insert(key, Tensor(1, 2, third));
        Tensor got(1, 1);
        ASSERT_TRUE(cache->lookup(key, &got));
        EXPECT_EQ(got.at(0, 0), onGrid) << "digest " << d;
        EXPECT_EQ(got.at(0, 1), onGrid) << "digest " << d;
    }
}

TEST(Engine, QuantizedCacheHitsMatchMissesBitwise)
{
    // The engine serves decode(encode(x)) on a miss, so the numbers a
    // caller sees never depend on whether the latent was resident.
    for (LatentPrecision p :
         {LatentPrecision::kFp16, LatentPrecision::kInt8}) {
        Engine engine(tinyOptions().withLatentPrecision(p));
        Ast a = tinyProgram(3);
        Ast b = tinyProgram(5);

        auto miss = engine.encodeBatch({&a, &b});
        ASSERT_TRUE(miss.isOk());
        double coldProb = engine.compare(a, b).value();

        Ast a_copy = tinyProgram(3);
        auto hit = engine.encodeBatch({&a_copy, &b});
        ASSERT_TRUE(hit.isOk());
        EXPECT_GE(engine.stats().cacheHits, 2u);
        for (int i = 0; i < 2; ++i)
            EXPECT_FLOAT_EQ(
                miss.value()[i].maxAbsDiff(hit.value()[i]), 0.0f)
                << latentPrecisionName(p) << " latent " << i;
        EXPECT_EQ(engine.compare(a, b).value(), coldProb)
            << latentPrecisionName(p);
    }
}

TEST(Engine, Int8LatentStoreHoldsPairwiseAccuracyWithinHalfPercent)
{
    // Acceptance pin: storing latents at int8 (and fp16) moves the
    // paper's headline pairwise-accuracy metric by at most 0.5%
    // relative to the fp32 cache on the same pair set.
    std::vector<Submission> subs;
    std::vector<int> idx;
    for (int i = 0; i < 12; ++i) {
        Submission s;
        s.id = i;
        s.ast = tinyProgram(i + 1);
        s.runtimeMs = 10.0 * (i + 1);
        subs.push_back(std::move(s));
        idx.push_back(i);
    }
    Rng rng(5);
    PairOptions popt;
    auto pairs = buildPairs(subs, idx, popt, rng);
    ASSERT_FALSE(pairs.empty());

    Engine fp32Engine(tinyOptions());
    const double accFp32 = pairwiseAccuracy(fp32Engine, subs, pairs);

    Engine int8Engine(
        tinyOptions().withLatentPrecision(LatentPrecision::kInt8));
    EXPECT_NEAR(pairwiseAccuracy(int8Engine, subs, pairs), accFp32,
                0.005);

    Engine fp16Engine(
        tinyOptions().withLatentPrecision(LatentPrecision::kFp16));
    EXPECT_NEAR(pairwiseAccuracy(fp16Engine, subs, pairs), accFp32,
                0.005);
}

// ----------------------------- multi-model cache safety (ISSUE 5)

TEST(Engine, ExternalCacheMustBeNamespaceAware)
{
    // A plain ShardedEncodingCache has no namespace allocator: two
    // engines attaching different models to it used to cross-read
    // latents. The ctor now refuses it outright.
    auto model = std::make_shared<ComparativePredictor>(
        tinyOptions().encoder, 7);
    auto plain = std::make_shared<ShardedEncodingCache>(2, 16);
    EXPECT_THROW(Engine(model, tinyOptions(), plain), FatalError);

    auto aware = ShardedEncodingCache::makeShared(2, 16);
    Engine ok(model, tinyOptions(), aware); // namespace-aware: fine
    EXPECT_TRUE(ok.compare(tinyProgram(1), tinyProgram(2)).isOk());
}

TEST(Engine, TwoModelsOnOneSharedCacheNeverCrossRead)
{
    // Regression for the latent-collision hazard: two DIFFERENT
    // models behind one shared cache, queried with the SAME trees,
    // must each reproduce their private-cache outputs bitwise; the
    // cache must hold one entry per (model, tree).
    auto modelA = std::make_shared<ComparativePredictor>(
        tinyOptions().encoder, 7);
    auto modelB = std::make_shared<ComparativePredictor>(
        tinyOptions().encoder, 1234);

    Ast a = tinyProgram(2);
    Ast b = tinyProgram(5);
    double soloA = Engine(modelA, tinyOptions()).compare(a, b).value();
    double soloB = Engine(modelB, tinyOptions()).compare(a, b).value();
    ASSERT_NE(soloA, soloB); // different weights, different answers

    auto cache = ShardedEncodingCache::makeShared(2, 64);
    Engine engineA(modelA, tinyOptions(), cache);
    Engine engineB(modelB, tinyOptions(), cache);

    // Interleave so each engine's second read hits entries the OTHER
    // model wrote in between — the old digest-only keying would have
    // served engineB modelA's latents here.
    EXPECT_EQ(engineA.compare(a, b).value(), soloA);
    EXPECT_EQ(engineB.compare(a, b).value(), soloB);
    EXPECT_EQ(engineA.compare(a, b).value(), soloA);
    EXPECT_EQ(engineB.compare(a, b).value(), soloB);

    // One namespace per model, two residents (a, b) in each.
    EXPECT_EQ(cache->size(), 4u);
    auto rowsA = engineA.perModelCacheStats();
    auto rowsB = engineB.perModelCacheStats();
    ASSERT_EQ(rowsA.size(), 1u);
    ASSERT_EQ(rowsB.size(), 1u);
    EXPECT_NE(rowsA[0].versionId, rowsB[0].versionId);
    EXPECT_EQ(rowsA[0].cache.residents, 2u);
    EXPECT_EQ(rowsB[0].cache.residents, 2u);
    // The second round was pure hits for both tenants.
    EXPECT_GE(rowsA[0].cache.hits, 2u);
    EXPECT_GE(rowsB[0].cache.hits, 2u);
}

TEST(Engine, SameModelOnOneSharedCacheSharesItsNamespace)
{
    // The sharded-serving seam: N engines over ONE model must share
    // latents (one namespace), or the shared cache loses its point.
    auto model = std::make_shared<ComparativePredictor>(
        tinyOptions().encoder, 7);
    auto cache = ShardedEncodingCache::makeShared(2, 64);
    Engine e1(model, tinyOptions(), cache);
    Engine e2(model, tinyOptions(), cache);

    Ast a = tinyProgram(2);
    Ast b = tinyProgram(5);
    ASSERT_TRUE(e1.compare(a, b).isOk());
    std::uint64_t missesAfterFirst = cache->stats().misses;
    ASSERT_TRUE(e2.compare(a, b).isOk()); // all hits via e1's work
    EXPECT_EQ(cache->stats().misses, missesAfterFirst);
    EXPECT_EQ(cache->size(), 2u);
    EXPECT_EQ(e1.perModelCacheStats()[0].versionId,
              e2.perModelCacheStats()[0].versionId);
    EXPECT_EQ(e1.stats().treesEncoded + e2.stats().treesEncoded, 2u);
}

} // namespace
} // namespace ccsa
