/**
 * @file
 * Tests for the evaluation metrics: accuracy, ROC/AUC, sensitivity
 * sweep, and confusion counts.
 */

#include <gtest/gtest.h>

#include "eval/metrics.hh"

namespace ccsa
{
namespace
{

std::vector<ScoredPair>
makeScored(std::initializer_list<std::tuple<double, float, double>> xs)
{
    std::vector<ScoredPair> out;
    for (const auto& [score, label, gap] : xs)
        out.push_back({score, label, gap});
    return out;
}

TEST(Metrics, AccuracyCountsCorrectly)
{
    auto scored = makeScored({
        {0.9, 1.0f, 10}, // correct
        {0.2, 0.0f, 10}, // correct
        {0.8, 0.0f, 10}, // wrong
        {0.4, 1.0f, 10}, // wrong
    });
    EXPECT_DOUBLE_EQ(pairwiseAccuracy(scored), 0.5);
}

TEST(Metrics, AccuracyEmptyFatal)
{
    EXPECT_THROW(pairwiseAccuracy(std::vector<ScoredPair>{}),
                 FatalError);
}

TEST(Metrics, PerfectSeparationAucOne)
{
    auto scored = makeScored({
        {0.9, 1.0f, 1}, {0.8, 1.0f, 1}, {0.7, 1.0f, 1},
        {0.3, 0.0f, 1}, {0.2, 0.0f, 1}, {0.1, 0.0f, 1},
    });
    EXPECT_NEAR(rocAuc(scored), 1.0, 1e-9);
}

TEST(Metrics, InvertedScoresAucZero)
{
    auto scored = makeScored({
        {0.1, 1.0f, 1}, {0.2, 1.0f, 1},
        {0.8, 0.0f, 1}, {0.9, 0.0f, 1},
    });
    EXPECT_NEAR(rocAuc(scored), 0.0, 1e-9);
}

TEST(Metrics, UninformativeScoresAucHalf)
{
    auto scored = makeScored({
        {0.5, 1.0f, 1}, {0.5, 0.0f, 1},
        {0.5, 1.0f, 1}, {0.5, 0.0f, 1},
    });
    EXPECT_NEAR(rocAuc(scored), 0.5, 1e-9);
}

TEST(Metrics, RocCurveMonotone)
{
    auto scored = makeScored({
        {0.9, 1.0f, 1}, {0.7, 0.0f, 1}, {0.6, 1.0f, 1},
        {0.4, 1.0f, 1}, {0.3, 0.0f, 1}, {0.1, 0.0f, 1},
    });
    auto curve = rocCurve(scored);
    ASSERT_GE(curve.size(), 3u);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
        EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
    }
    EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
    EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
}

TEST(Metrics, RocSingleClassFatal)
{
    auto scored = makeScored({{0.9, 1.0f, 1}, {0.8, 1.0f, 1}});
    EXPECT_THROW(rocCurve(scored), FatalError);
}

TEST(Metrics, SensitivityFiltersOnGap)
{
    auto scored = makeScored({
        {0.9, 1.0f, 1.0},   // correct, small gap
        {0.1, 1.0f, 2.0},   // wrong, small gap
        {0.9, 1.0f, 100.0}, // correct, big gap
        {0.8, 1.0f, 200.0}, // correct, big gap
        {0.2, 0.0f, 150.0}, // correct, big gap
    });
    auto sweep = sensitivitySweep(scored, {0.0, 50.0, 1000.0});
    ASSERT_EQ(sweep.size(), 3u);
    EXPECT_EQ(sweep[0].pairsRetained, 5u);
    EXPECT_DOUBLE_EQ(sweep[0].accuracy, 0.8);
    EXPECT_EQ(sweep[1].pairsRetained, 3u);
    EXPECT_DOUBLE_EQ(sweep[1].accuracy, 1.0);
    EXPECT_EQ(sweep[2].pairsRetained, 0u);
}

TEST(Metrics, ConfusionCounts)
{
    auto scored = makeScored({
        {0.9, 1.0f, 1}, // tp
        {0.9, 0.0f, 1}, // fp
        {0.1, 0.0f, 1}, // tn
        {0.1, 1.0f, 1}, // fn
        {0.8, 1.0f, 1}, // tp
    });
    Confusion c = confusion(scored);
    EXPECT_EQ(c.tp, 2u);
    EXPECT_EQ(c.fp, 1u);
    EXPECT_EQ(c.tn, 1u);
    EXPECT_EQ(c.fn, 1u);
    EXPECT_NEAR(c.precision(), 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(c.recall(), 2.0 / 3.0, 1e-9);
}

TEST(Metrics, ConfusionThresholdShifts)
{
    auto scored = makeScored({{0.6, 1.0f, 1}, {0.6, 0.0f, 1}});
    Confusion strict = confusion(scored, 0.7);
    EXPECT_EQ(strict.tp, 0u);
    EXPECT_EQ(strict.fn, 1u);
    Confusion lax = confusion(scored, 0.5);
    EXPECT_EQ(lax.tp, 1u);
    EXPECT_EQ(lax.fp, 1u);
}

} // namespace
} // namespace ccsa
