/**
 * @file
 * Lexer and parser tests for the MiniCxx frontend.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "frontend/lexer.hh"
#include "frontend/parser.hh"

namespace ccsa
{
namespace
{

std::vector<Token>
lex(const std::string& src)
{
    return Lexer(src).tokenize();
}

TEST(Lexer, KeywordsAndIdentifiers)
{
    auto toks = lex("int foo while whilex");
    ASSERT_EQ(toks.size(), 5u);
    EXPECT_EQ(toks[0].kind, TokenKind::KwInt);
    EXPECT_EQ(toks[1].kind, TokenKind::Identifier);
    EXPECT_EQ(toks[2].kind, TokenKind::KwWhile);
    EXPECT_EQ(toks[3].kind, TokenKind::Identifier);
    EXPECT_EQ(toks[4].kind, TokenKind::Eof);
}

TEST(Lexer, NumbersWithSuffixesAndFloats)
{
    auto toks = lex("42 1000000007LL 3.14 1e9 2.5e-3");
    EXPECT_EQ(toks[0].kind, TokenKind::IntLit);
    EXPECT_EQ(toks[1].kind, TokenKind::IntLit);
    EXPECT_EQ(toks[1].text, "1000000007");
    EXPECT_EQ(toks[2].kind, TokenKind::DoubleLit);
    EXPECT_EQ(toks[3].kind, TokenKind::DoubleLit);
    EXPECT_EQ(toks[4].kind, TokenKind::DoubleLit);
}

TEST(Lexer, StringAndCharLiterals)
{
    auto toks = lex("\"hi\\n\" 'a' '\\n'");
    EXPECT_EQ(toks[0].kind, TokenKind::StringLit);
    EXPECT_EQ(toks[1].kind, TokenKind::CharLit);
    EXPECT_EQ(toks[1].text, "a");
    EXPECT_EQ(toks[2].kind, TokenKind::CharLit);
}

TEST(Lexer, CommentsAndPreprocessorSkipped)
{
    auto toks = lex("#include <bits/stdc++.h>\n"
                    "// line comment\n"
                    "/* block\n comment */ int x;");
    EXPECT_EQ(toks[0].kind, TokenKind::KwInt);
    EXPECT_EQ(toks[1].text, "x");
}

TEST(Lexer, MultiCharOperators)
{
    auto toks = lex("++ -- += << >> <= >= == != && || %=");
    std::vector<TokenKind> expected{
        TokenKind::PlusPlus, TokenKind::MinusMinus,
        TokenKind::PlusAssign, TokenKind::LtLt, TokenKind::GtGt,
        TokenKind::LessEq, TokenKind::GreaterEq,
        TokenKind::EqualEqual, TokenKind::NotEqual,
        TokenKind::AmpAmp, TokenKind::PipePipe,
        TokenKind::PercentAssign};
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(toks[i].kind, expected[i]) << i;
}

TEST(Lexer, PositionsTracked)
{
    auto toks = lex("int\n  x;");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[1].col, 3);
}

TEST(Lexer, UnterminatedStringFatal)
{
    EXPECT_THROW(lex("\"oops"), FatalError);
}

TEST(Lexer, UnknownCharacterFatal)
{
    EXPECT_THROW(lex("int $x;"), FatalError);
}

// ---------------------------------------------------------------- //

TEST(Parser, MinimalMain)
{
    Ast ast = parseSource("int main() { return 0; }");
    EXPECT_EQ(ast.countKind(NodeKind::FunctionDef), 1);
    EXPECT_EQ(ast.countKind(NodeKind::ReturnStmt), 1);
}

TEST(Parser, UsingDirectiveSkipped)
{
    Ast ast = parseSource(
        "using namespace std;\nint main() { return 0; }");
    EXPECT_EQ(ast.countKind(NodeKind::FunctionDef), 1);
}

TEST(Parser, PrecedenceViaSExpression)
{
    Ast ast = parseSource("int main() { int x = 1 + 2 * 3; }");
    std::string s = ast.toSExpression();
    // Mul binds tighter than Add.
    EXPECT_NE(s.find("(Add (IntLiteral:1) (Mul (IntLiteral:2) "
                     "(IntLiteral:3)))"),
              std::string::npos)
        << s;
}

TEST(Parser, ParenthesesOverridePrecedence)
{
    Ast ast = parseSource("int main() { int x = (1 + 2) * 3; }");
    std::string s = ast.toSExpression();
    EXPECT_NE(s.find("(Mul (Add"), std::string::npos) << s;
}

TEST(Parser, AssignmentRightAssociative)
{
    Ast ast = parseSource("int main() { int a; int b; a = b = 3; }");
    std::string s = ast.toSExpression();
    EXPECT_NE(s.find("(Assign (VarRef:a) (Assign (VarRef:b) "
                     "(IntLiteral:3)))"),
              std::string::npos)
        << s;
}

TEST(Parser, ControlFlowStatements)
{
    Ast ast = parseSource(
        "int main() {\n"
        "    for (int i = 0; i < 10; i++) {\n"
        "        if (i % 2 == 0) continue; else break;\n"
        "    }\n"
        "    while (1 < 2) { ; }\n"
        "    do { } while (false);\n"
        "    return 0;\n"
        "}");
    EXPECT_EQ(ast.countKind(NodeKind::ForStmt), 1);
    EXPECT_EQ(ast.countKind(NodeKind::IfStmt), 1);
    EXPECT_EQ(ast.countKind(NodeKind::WhileStmt), 1);
    EXPECT_EQ(ast.countKind(NodeKind::DoWhileStmt), 1);
    EXPECT_EQ(ast.countKind(NodeKind::BreakStmt), 1);
    EXPECT_EQ(ast.countKind(NodeKind::ContinueStmt), 1);
}

TEST(Parser, ForStmtHasFourChildren)
{
    Ast ast = parseSource("int main() { for (;;) {} }");
    int loop = ast.nodesOfKind(NodeKind::ForStmt)[0];
    ASSERT_EQ(ast.node(loop).children.size(), 4u);
    EXPECT_EQ(ast.node(ast.node(loop).children[0]).kind,
              NodeKind::EmptyStmt);
    EXPECT_EQ(ast.node(ast.node(loop).children[1]).kind,
              NodeKind::EmptyStmt);
    EXPECT_EQ(ast.node(ast.node(loop).children[2]).kind,
              NodeKind::EmptyStmt);
}

TEST(Parser, VectorTypesIncludingNestedTemplates)
{
    Ast ast = parseSource(
        "int main() {\n"
        "    vector<int> a(10, 0);\n"
        "    vector<vector<int>> b(5);\n"
        "    vector<vector<int> > c(5);\n"
        "    return 0;\n"
        "}");
    EXPECT_EQ(ast.countKind(NodeKind::VarDecl), 3);
    EXPECT_EQ(ast.countKind(NodeKind::InitList), 3);
}

TEST(Parser, GlobalDeclarationsAndConstructorInit)
{
    Ast ast = parseSource(
        "const int LIM = 100;\n"
        "int table[100];\n"
        "vector<vector<int>> adj(100);\n"
        "int main() { return 0; }");
    EXPECT_EQ(ast.countKind(NodeKind::DeclStmt), 3);
    EXPECT_EQ(ast.countKind(NodeKind::ArrayExtent), 1);
}

TEST(Parser, ArrayDeclarators)
{
    Ast ast = parseSource("int main() { int dp[105][900 + 5]; }");
    EXPECT_EQ(ast.countKind(NodeKind::ArrayExtent), 2);
}

TEST(Parser, FunctionWithParamsStoresTypeAndName)
{
    Ast ast = parseSource(
        "int add(int a, long long b, vector<int>& v, string s) {\n"
        "    return a;\n"
        "}\n"
        "int main() { return add(1, 2, 3, 4); }");
    auto params = ast.nodesOfKind(NodeKind::Param);
    ASSERT_EQ(params.size(), 4u);
    EXPECT_EQ(ast.node(params[0]).text, "int|a");
    EXPECT_EQ(ast.node(params[1]).text, "long long|b");
    EXPECT_EQ(ast.node(params[2]).text, "vector<int>&|v");
    EXPECT_EQ(ast.node(params[3]).text, "string|s");
}

TEST(Parser, CallsSubscriptsMembersChained)
{
    Ast ast = parseSource(
        "int main() {\n"
        "    vector<vector<int>> adj(5);\n"
        "    adj[0].push_back(3);\n"
        "    int s = adj[0].size();\n"
        "    return 0;\n"
        "}");
    EXPECT_EQ(ast.countKind(NodeKind::CallExpr), 2);
    EXPECT_GE(ast.countKind(NodeKind::SubscriptExpr), 2);
    EXPECT_EQ(ast.countKind(NodeKind::MemberExpr), 2);
}

TEST(Parser, IostreamShiftChains)
{
    Ast ast = parseSource(
        "int main() {\n"
        "    int n;\n"
        "    cin >> n;\n"
        "    cout << n << \"\\n\";\n"
        "    return 0;\n"
        "}");
    EXPECT_EQ(ast.countKind(NodeKind::ShiftRight), 1);
    EXPECT_EQ(ast.countKind(NodeKind::ShiftLeft), 2);
}

TEST(Parser, TernaryAndLogicalOperators)
{
    Ast ast = parseSource(
        "int main() { int a = 1 < 2 && 3 > 2 ? 4 : 5; }");
    EXPECT_EQ(ast.countKind(NodeKind::CondExpr), 1);
    EXPECT_EQ(ast.countKind(NodeKind::LogicalAnd), 1);
}

TEST(Parser, UnaryOperators)
{
    Ast ast = parseSource(
        "int main() { int a = 0; a = -a; a = !a; ++a; a--; }");
    EXPECT_EQ(ast.countKind(NodeKind::Negate), 1);
    EXPECT_EQ(ast.countKind(NodeKind::LogicalNot), 1);
    EXPECT_EQ(ast.countKind(NodeKind::PreInc), 1);
    EXPECT_EQ(ast.countKind(NodeKind::PostDec), 1);
}

TEST(Parser, MultiDeclaratorStatement)
{
    Ast ast = parseSource("int main() { int a = 1, b, c = 2; }");
    EXPECT_EQ(ast.countKind(NodeKind::VarDecl), 3);
}

TEST(Parser, RecursiveFunction)
{
    Ast ast = parseSource(
        "long long gcdFn(long long a, long long b) {\n"
        "    if (b == 0) return a;\n"
        "    return gcdFn(b, a % b);\n"
        "}\n"
        "int main() { return 0; }");
    EXPECT_EQ(ast.countKind(NodeKind::FunctionDef), 2);
    EXPECT_EQ(ast.countKind(NodeKind::CallExpr), 1);
}

TEST(Parser, SyntaxErrorsCarryPositions)
{
    try {
        parseSource("int main() { int x = ; }");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("line 1"),
                  std::string::npos);
    }
}

TEST(Parser, MissingSemicolonFatal)
{
    EXPECT_THROW(parseSource("int main() { int x = 1 }"),
                 FatalError);
}

TEST(Parser, UnbalancedBraceFatal)
{
    EXPECT_THROW(parseSource("int main() { if (1) { }"),
                 FatalError);
}

TEST(Parser, ParseAndPrunePipeline)
{
    Ast pruned = parseAndPrune(
        "#include <bits/stdc++.h>\n"
        "using namespace std;\n"
        "int g = 5;\n"
        "int helper(int x) { return x + g; }\n"
        "int main() { return helper(1); }");
    EXPECT_EQ(pruned.countKind(NodeKind::FunctionDef), 2);
    // Global decl gone.
    EXPECT_EQ(pruned.countKind(NodeKind::DeclStmt), 0);
}

} // namespace
} // namespace ccsa
