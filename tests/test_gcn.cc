/**
 * @file
 * Tests for the GCN stack and the AST adjacency normalisation.
 */

#include <gtest/gtest.h>

#include "ast/ast.hh"
#include "gradcheck.hh"
#include "graph/adjacency.hh"
#include "nn/gcn.hh"

namespace ccsa
{
namespace
{

using testutil::expectGradientsMatch;
using testutil::patterned;

Ast
smallAst()
{
    Ast ast(NodeKind::Root);
    int fn = ast.addNode(NodeKind::FunctionDef, 0, "main");
    int body = ast.addNode(NodeKind::CompoundStmt, fn);
    int loop = ast.addNode(NodeKind::ForStmt, body);
    ast.addNode(NodeKind::ExprStmt, loop);
    ast.addNode(NodeKind::ReturnStmt, body);
    return ast;
}

TEST(Adjacency, SymmetricNormalised)
{
    Ast ast = smallAst();
    auto adj = buildNormalizedAdjacency(ast);
    EXPECT_EQ(adj->rows(), ast.size());
    Tensor d = adj->toDense();
    // Symmetry.
    EXPECT_LT(d.maxAbsDiff(d.transpose()), 1e-6f);
    // Self loops present.
    for (int i = 0; i < ast.size(); ++i)
        EXPECT_GT(d.at(i, i), 0.0f);
    // Known normalisation: entry (i,j) = 1/sqrt(deg_i deg_j), so a
    // row times the sqrt-degree vector sums to sqrt(deg_i).
    std::vector<double> deg(ast.size(), 1.0);
    for (int i = 0; i < ast.size(); ++i)
        for (int c : ast.node(i).children) {
            deg[i] += 1.0;
            deg[c] += 1.0;
        }
    for (int i = 0; i < ast.size(); ++i) {
        double acc = 0.0;
        for (int j = 0; j < ast.size(); ++j)
            acc += d.at(i, j) * std::sqrt(deg[j]);
        EXPECT_NEAR(acc, std::sqrt(deg[i]), 1e-5);
    }
}

TEST(Gcn, ForwardShapes)
{
    Rng rng(1);
    nn::GcnStack gcn(3, 5, 2, rng);
    Ast ast = smallAst();
    auto adj = buildNormalizedAdjacency(ast);
    ag::Var x = ag::constant(patterned(ast.size(), 3, 0.5f));
    ag::Var nodes = gcn.forwardNodes(adj, x);
    EXPECT_EQ(nodes.value().rows(), ast.size());
    EXPECT_EQ(nodes.value().cols(), 5);
    ag::Var z = gcn.readout(adj, x);
    EXPECT_EQ(z.value().rows(), 1);
    EXPECT_EQ(z.value().cols(), 5);
}

TEST(Gcn, GradientsFlowToAllLayers)
{
    Rng rng(2);
    nn::GcnStack gcn(2, 3, 3, rng);
    Ast ast = smallAst();
    auto adj = buildNormalizedAdjacency(ast);
    ag::Var x = ag::constant(patterned(ast.size(), 2, 0.5f));
    ag::backward(ag::sumAllOp(gcn.readout(adj, x)));
    int layers_with_grad = 0;
    double total = 0.0;
    for (auto* p : gcn.parameters())
        total += p->var.grad().normSq();
    EXPECT_GT(total, 0.0);
    (void)layers_with_grad;
}

TEST(Gcn, InputGradientCheck)
{
    Rng rng(3);
    nn::GcnStack gcn(2, 3, 1, rng);
    Ast ast = smallAst();
    auto adj = buildNormalizedAdjacency(ast);
    std::vector<ag::Var> leaves{
        ag::leaf(patterned(ast.size(), 2, 0.4f))};
    expectGradientsMatch(leaves, [&] {
        return ag::sumAllOp(gcn.readout(adj, leaves[0]));
    }, 1e-2f, 3e-2f);
}

TEST(Gcn, DepthZeroFatal)
{
    Rng rng(4);
    EXPECT_THROW(nn::GcnStack(2, 3, 0, rng), FatalError);
}

TEST(Gcn, DeeperStacksSmoothTowardsNeighbours)
{
    // Structural sanity: different trees produce different readouts.
    Rng rng(5);
    nn::GcnStack gcn(2, 4, 2, rng);
    Ast a = smallAst();
    Ast b(NodeKind::Root);
    int fn = b.addNode(NodeKind::FunctionDef, 0, "main");
    int body = b.addNode(NodeKind::CompoundStmt, fn);
    b.addNode(NodeKind::WhileStmt, body);
    b.addNode(NodeKind::WhileStmt, body);

    auto adj_a = buildNormalizedAdjacency(a);
    auto adj_b = buildNormalizedAdjacency(b);
    ag::Var xa = ag::constant(patterned(a.size(), 2, 0.5f));
    ag::Var xb = ag::constant(patterned(b.size(), 2, 0.5f));
    Tensor za = gcn.readout(adj_a, xa).value();
    Tensor zb = gcn.readout(adj_b, xb).value();
    EXPECT_GT(za.maxAbsDiff(zb), 1e-6f);
}

} // namespace
} // namespace ccsa
