/**
 * @file
 * End-to-end integration tests: generate a corpus, train a small
 * predictor, and verify it beats chance on disjoint held-out pairs —
 * the core claim of the paper at miniature scale.
 */

#include <gtest/gtest.h>

#include "eval/experiment.hh"

namespace ccsa
{
namespace
{

ExperimentConfig
tinyConfig()
{
    ExperimentConfig cfg;
    cfg.encoder.embedDim = 16;
    cfg.encoder.hiddenDim = 20;
    cfg.submissionsPerProblem = 36;
    cfg.train.epochs = 3;
    cfg.train.learningRate = 5e-3f;
    cfg.trainPairs.maxPairs = 500;
    cfg.evalPairs.maxPairs = 300;
    return cfg;
}

TEST(Integration, TreeLstmBeatsChanceOnHeldOut)
{
    ExperimentConfig cfg = tinyConfig();
    TrainedModel tm = trainOnProblem(tableISpec(ProblemFamily::H),
                                     cfg);
    EXPECT_EQ(tm.trainIdx.size() + tm.testIdx.size(),
              tm.corpus->size());
    double acc = evalHeldOut(tm, cfg);
    EXPECT_GT(acc, 0.62) << "model failed to learn the task";
    EXPECT_GT(tm.stats.finalAccuracy(), 0.6);
}

TEST(Integration, ScoredPairsSupportRocAndSensitivity)
{
    ExperimentConfig cfg = tinyConfig();
    TrainedModel tm = trainOnProblem(tableISpec(ProblemFamily::H),
                                     cfg);
    auto scored = scoreHeldOut(tm, cfg);
    ASSERT_FALSE(scored.empty());
    double auc = rocAuc(scored);
    EXPECT_GT(auc, 0.6);
    // Sensitivity (Fig. 6 shape): accuracy at a generous gap
    // threshold must be at least the unfiltered accuracy.
    auto sweep = sensitivitySweep(scored, {0.0, 4.0});
    ASSERT_EQ(sweep.size(), 2u);
    if (sweep[1].pairsRetained > 20) {
        EXPECT_GE(sweep[1].accuracy, sweep[0].accuracy - 0.05);
    }
}

TEST(Integration, CrossProblemEvaluationRuns)
{
    ExperimentConfig cfg = tinyConfig();
    cfg.submissionsPerProblem = 24;
    TrainedModel tm = trainOnProblem(tableISpec(ProblemFamily::H),
                                     cfg);
    double acc = evalCrossProblem(
        tm, tableISpec(ProblemFamily::E), cfg);
    EXPECT_GT(acc, 0.3);
    EXPECT_LE(acc, 1.0);
}

TEST(Integration, GcnEncoderTrainsEndToEnd)
{
    ExperimentConfig cfg = tinyConfig();
    cfg.encoder.kind = EncoderKind::Gcn;
    cfg.encoder.layers = 2;
    cfg.submissionsPerProblem = 24;
    cfg.trainPairs.maxPairs = 250;
    TrainedModel tm = trainOnProblem(tableISpec(ProblemFamily::H),
                                     cfg);
    double acc = evalHeldOut(tm, cfg);
    EXPECT_GT(acc, 0.45);
}

TEST(Integration, EnvScaleAdjustsConfig)
{
    ExperimentConfig cfg = tinyConfig();
    int subs = cfg.submissionsPerProblem;
    setenv("CCSA_SCALE", "2.0", 1);
    cfg.applyEnvScale();
    unsetenv("CCSA_SCALE");
    EXPECT_EQ(cfg.submissionsPerProblem, 2 * subs);
}

} // namespace
} // namespace ccsa
