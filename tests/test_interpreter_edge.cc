/**
 * @file
 * Additional edge-case coverage for the cost interpreter: constant
 * folding corners, environment merging across branches, loop-variable
 * shadowing, and io/env interactions.
 */

#include <gtest/gtest.h>

#include "frontend/parser.hh"
#include "judge/interpreter.hh"

namespace ccsa
{
namespace
{

double
costOf(const std::string& body, double n)
{
    Ast ast = parseSource(body);
    CostInterpreter interp(ast);
    return interp.programCost({{"n", n}, {"m", n}, {"q", n},
                               {"t", n}, {"x", n}});
}

TEST(InterpreterEdge, ArithmeticDerivedBoundsScale)
{
    // Bound n/2 + 1 must still follow n.
    std::string src =
        "int main() { int n; cin >> n; int half = n / 2 + 1;"
        " long long s = 0;"
        " for (int i = 0; i < half; i++) s += i; return 0; }";
    double c1 = costOf(src, 1e3);
    double c2 = costOf(src, 1e4);
    EXPECT_NEAR(c2 / c1, 10.0, 2.0);
}

TEST(InterpreterEdge, SqrtDerivedVariableBound)
{
    // nb = sqrt-ish block count: the sqrt-decomposition idiom.
    std::string src =
        "int main() { int n; cin >> n; int bs = 1;"
        " while (bs * bs < n) bs++;"
        " long long s = 0;"
        " for (int b = 0; b <= bs; b++) s += b; return 0; }";
    double c1 = costOf(src, 1e4); // sqrt = 100
    double c2 = costOf(src, 1e8); // sqrt = 10000
    EXPECT_NEAR(c2 / c1, 100.0, 30.0);
}

TEST(InterpreterEdge, BranchAssignmentsMergeConservatively)
{
    // x differs across branches -> later loop bound unknown ->
    // default trips (small), NOT the then-branch constant.
    std::string src =
        "int main() { int n; cin >> n; int x = 0;"
        " if (n > 5) x = 1000000; else x = 1;"
        " long long s = 0;"
        " for (int i = 0; i < x; i++) s += i; return 0; }";
    EXPECT_LT(costOf(src, 100), 1e5);
}

TEST(InterpreterEdge, AgreeingBranchesKeepBinding)
{
    std::string src =
        "int main() { int n; cin >> n; int x = 50000;"
        " if (n > 5) { int y = 1; } else { int z = 2; }"
        " long long s = 0;"
        " for (int i = 0; i < x; i++) s += i; return 0; }";
    EXPECT_GT(costOf(src, 100), 5e4);
}

TEST(InterpreterEdge, DownwardLoopCounts)
{
    std::string src =
        "int main() { int n; cin >> n; long long s = 0;"
        " for (int i = n; i >= 1; i--) s += i; return 0; }";
    double c1 = costOf(src, 1e3);
    double c2 = costOf(src, 1e4);
    EXPECT_NEAR(c2 / c1, 10.0, 2.0);
}

TEST(InterpreterEdge, SteppedLoopDividesTrips)
{
    std::string step1 =
        "int main() { int n; cin >> n; long long s = 0;"
        " for (int i = 0; i < n; i++) s += i; return 0; }";
    std::string step10 =
        "int main() { int n; cin >> n; long long s = 0;"
        " for (int i = 0; i < n; i += 10) s += i; return 0; }";
    double r = costOf(step1, 1e5) / costOf(step10, 1e5);
    EXPECT_NEAR(r, 10.0, 3.0);
}

TEST(InterpreterEdge, GeometricForLoopIsLogarithmic)
{
    std::string src =
        "int main() { int n; cin >> n; long long s = 0;"
        " for (int i = 1; i < n; i *= 2) s += i; return 0; }";
    double c1 = costOf(src, 1e3);
    double c2 = costOf(src, 1e6);
    EXPECT_LT(c2 / c1, 3.0);
}

TEST(InterpreterEdge, UnknownContainerBoundUsesDefault)
{
    // Opaque adjacency iteration must not explode to n trips.
    std::string src =
        "vector<vector<int>> adj(100005);\n"
        "int main() { int n; cin >> n; long long s = 0;\n"
        " for (int e = 0; e < adj[1].size(); e++) s += e;\n"
        " return 0; }";
    double c = costOf(src, 1e6);
    EXPECT_LT(c, 1e6); // far below n iterations
}

TEST(InterpreterEdge, VectorAllocationChargedBySize)
{
    std::string big =
        "int main() { int n; cin >> n;"
        " vector<long long> v(2 * n, 0); return 0; }";
    std::string small =
        "int main() { int n; cin >> n;"
        " vector<long long> v(2, 0); return 0; }";
    EXPECT_GT(costOf(big, 1e6), costOf(small, 1e6) + 1e5);
}

TEST(InterpreterEdge, StringConstantsDoNotCrashFold)
{
    std::string src =
        "int main() { string s = \"abc\";"
        " cout << s << \"\\n\"; return 0; }";
    EXPECT_GT(costOf(src, 10), 0.0);
}

TEST(InterpreterEdge, TernaryChargesBothArmsHalf)
{
    std::string src =
        "int main() { int n; cin >> n;"
        " int y = n > 2 ? 1 : 0; cout << y; return 0; }";
    EXPECT_GT(costOf(src, 10), 0.0);
}

TEST(InterpreterEdge, PrototypesCostNothing)
{
    std::string src =
        "int helper(int a);\n"
        "int main() { return 0; }";
    EXPECT_LT(costOf(src, 1e6), 50.0);
}

TEST(InterpreterEdge, UnknownCalleeChargedOverheadOnly)
{
    std::string src =
        "int main() { int n; cin >> n;"
        " int y = mystery(n); return 0; }";
    EXPECT_LT(costOf(src, 1e6), 100.0);
}

TEST(InterpreterEdge, CharLiteralArithmeticFolds)
{
    std::string src =
        "int main() { int n; cin >> n; int base = 'a';"
        " long long s = 0;"
        " for (int i = 0; i < n; i++) s += base; return 0; }";
    double c1 = costOf(src, 1e3);
    double c2 = costOf(src, 1e4);
    EXPECT_NEAR(c2 / c1, 10.0, 2.0);
}

TEST(InterpreterEdge, DoWhileRunsAtLeastOnce)
{
    std::string src =
        "int main() { int n; cin >> n; int x = 0;"
        " do { x++; } while (x < 0); return 0; }";
    EXPECT_GT(costOf(src, 10), 0.0);
}


TEST(InterpreterEdge, SqrtCounterRespectsKnownStart)
{
    // Float-truncation fix-up: r already starts at ~sqrt(x), so the
    // correction loop runs O(1) trips, not sqrt(x).
    std::string src =
        "int main() { long long x; cin >> x;"
        " double root = sqrt(1.0 * x); long long r = root;"
        " while (r * r < x) r++;"
        " cout << r; return 0; }";
    double c1 = costOf(src, 1e4);
    double c2 = costOf(src, 1e12);
    // Cost must stay flat in x (no sqrt(x) blow-up).
    EXPECT_LT(c2, c1 * 3.0 + 100.0);
}

TEST(InterpreterEdge, SqrtCounterFromZeroChargesRoot)
{
    std::string src =
        "int main() { int n; cin >> n; int bs = 1;"
        " while (bs * bs < n) bs++; cout << bs; return 0; }";
    double c1 = costOf(src, 1e4);  // ~100 trips
    double c2 = costOf(src, 1e8);  // ~10000 trips
    EXPECT_NEAR(c2 / c1, 100.0, 35.0);
}

} // namespace
} // namespace ccsa
