/**
 * @file
 * The crash-isolation test battery for the multi-process serving
 * layer (serve/ipc). Pinned contracts:
 *
 *  - the wire codec round-trips trees, requests, and replies
 *    bit-exactly, dedups repeated trees, and rejects torn / corrupt
 *    / oversized frames as errors instead of parsing garbage;
 *  - FaultInjector's spec grammar and one-shot trigger semantics,
 *    including EINTR storms being fully absorbed by the fd_util
 *    retry loop (no user-visible effect);
 *  - a worker loop served in-process over a socketpair answers
 *    ping/encode/compare bitwise-identically to a synchronous
 *    Engine;
 *  - ProcessShardedServer parity: results bitwise-equal the sync
 *    Engine at 1/2/4 shards, split/join included;
 *  - robustness: SIGKILLing a worker mid-batch under 6-producer load
 *    loses NOTHING (every future resolves — with the sync Engine's
 *    exact value or an attributed Status), the respawned worker
 *    rejoins and serves its partition, and restart counters tick;
 *  - injected faults: a crash during the idempotent encode phase is
 *    retried invisibly on a fresh worker; a crash (or torn write)
 *    during compare fails fast WITHOUT retry; an unspawnable worker
 *    opens the circuit breaker and degrades only its own shard;
 *  - SubmitOptions deadlines expire queued requests with
 *    DeadlineExceeded and the conservation identity
 *    submitted == completed + failed + deadline holds once drained.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>

#include <csignal>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include <unistd.h>

#include "base/fd_util.hh"
#include "frontend/parser.hh"
#include "model/predictor.hh"
#include "serve/ipc/fault_injector.hh"
#include "serve/ipc/process_sharded_server.hh"
#include "serve/ipc/wire.hh"
#include "serve/ipc/worker.hh"
#include "serve/metrics/metrics.hh"

namespace ccsa
{
namespace
{

using namespace std::chrono_literals;

Ast
tinyProgram(int loops)
{
    std::string src = "int main() {\n int n;\n cin >> n;\n";
    for (int i = 0; i < loops; ++i) {
        std::string v = "i" + std::to_string(i);
        src += " for (int " + v + " = 0; " + v + " < n; " + v +
            "++) { int z" + std::to_string(i) + " = " + v + "; }\n";
    }
    src += " return 0;\n}\n";
    return parseAndPrune(src);
}

Engine::Options
tinyOptions()
{
    return Engine::Options()
        .withEmbedDim(8)
        .withHiddenDim(8)
        .withSeed(7)
        .withThreads(1);
}

/** The model every IPC test serves: deterministic from the seed, so
 * a local Engine(tinyOptions()) has bitwise-identical weights. */
std::shared_ptr<ComparativePredictor>
tinyModel()
{
    Engine::Options opts = tinyOptions();
    return std::make_shared<ComparativePredictor>(opts.encoder,
                                                  opts.seed);
}

/** Small deadlines so fault paths resolve in test time, not ops
 * time. */
ProcessShardedServer::Options
ipcOptions(std::size_t shards)
{
    return ProcessShardedServer::Options()
        .withNumShards(shards)
        .withRpcDeadline(2000ms)
        .withHeartbeatInterval(20ms)
        .withHeartbeatDeadline(1000ms)
        .withBackoff(5ms, 100ms);
}

// ------------------------------------------------------- wire codec

TEST(IpcWire, ScalarRoundtripAndBoundsChecks)
{
    ipc::Writer w;
    w.putU8(7);
    w.putU32(0xDEADBEEFu);
    w.putU64(0x0123456789ABCDEFull);
    w.putI32(-42);
    w.putF32(1.5f);
    w.putF64(-2.25);
    w.putString("hello");

    ipc::Reader r(w.bytes());
    std::uint8_t u8 = 0;
    std::uint32_t u32 = 0;
    std::uint64_t u64 = 0;
    std::int32_t i32 = 0;
    float f32 = 0;
    double f64 = 0;
    std::string s;
    EXPECT_TRUE(r.takeU8(&u8).isOk());
    EXPECT_TRUE(r.takeU32(&u32).isOk());
    EXPECT_TRUE(r.takeU64(&u64).isOk());
    EXPECT_TRUE(r.takeI32(&i32).isOk());
    EXPECT_TRUE(r.takeF32(&f32).isOk());
    EXPECT_TRUE(r.takeF64(&f64).isOk());
    EXPECT_TRUE(r.takeString(&s).isOk());
    EXPECT_EQ(u8, 7);
    EXPECT_EQ(u32, 0xDEADBEEFu);
    EXPECT_EQ(u64, 0x0123456789ABCDEFull);
    EXPECT_EQ(i32, -42);
    EXPECT_EQ(f32, 1.5f);
    EXPECT_EQ(f64, -2.25);
    EXPECT_EQ(s, "hello");
    EXPECT_TRUE(r.exhausted());

    // Reading past the end is an error, not UB.
    EXPECT_FALSE(r.takeU32(&u32).isOk());

    // A string whose length word overruns the buffer is rejected.
    ipc::Writer bad;
    bad.putU32(1000); // claims 1000 bytes; none follow
    ipc::Reader rb(bad.bytes());
    EXPECT_FALSE(rb.takeString(&s).isOk());
}

TEST(IpcWire, CompareRequestRoundtripDedupsTrees)
{
    Ast a = tinyProgram(2);
    Ast b = tinyProgram(4);
    // a repeats — the batch must serialize it once.
    std::vector<Engine::PairRequest> pairs{
        {&a, &b}, {&b, &a}, {&a, &a}};
    ipc::TreeBatch batch = ipc::makeTreeBatch(pairs);
    EXPECT_EQ(batch.trees.size(), 2u);
    ASSERT_EQ(batch.pairs.size(), 3u);
    EXPECT_EQ(batch.pairs[0], std::make_pair(0u, 1u));
    EXPECT_EQ(batch.pairs[1], std::make_pair(1u, 0u));
    EXPECT_EQ(batch.pairs[2], std::make_pair(0u, 0u));

    std::vector<std::uint8_t> payload =
        ipc::encodeCompareRequest(batch);
    ipc::CompareRequest decoded;
    ASSERT_TRUE(
        ipc::decodeCompareRequest(payload, &decoded).isOk());
    ASSERT_EQ(decoded.trees.size(), 2u);
    EXPECT_EQ(decoded.pairs, batch.pairs);

    // Round-trip fidelity: the decoded trees re-serialize to the
    // same bytes (kinds + shape are all the model consumes, and all
    // the wire carries).
    ipc::Writer original;
    ipc::putAst(original, a);
    ipc::Writer rebuilt;
    ipc::putAst(rebuilt, decoded.trees[0]);
    EXPECT_EQ(original.bytes(), rebuilt.bytes());

    // Trailing garbage is rejected (no silent over-read).
    payload.push_back(0);
    EXPECT_FALSE(
        ipc::decodeCompareRequest(payload, &decoded).isOk());
}

TEST(IpcWire, RepliesRoundtripValuesAndStatuses)
{
    Result<std::vector<double>> ok =
        std::vector<double>{0.25, 0.75, 1.0};
    Result<std::vector<double>> decoded =
        Status::internal("unset");
    ASSERT_TRUE(ipc::decodeCompareReply(
                    ipc::encodeCompareReply(ok), &decoded)
                    .isOk());
    ASSERT_TRUE(decoded.isOk());
    EXPECT_EQ(decoded.value(), ok.value());

    Result<std::vector<double>> err =
        Status::resourceExhausted("queue full");
    ASSERT_TRUE(ipc::decodeCompareReply(
                    ipc::encodeCompareReply(err), &decoded)
                    .isOk());
    ASSERT_FALSE(decoded.isOk());
    EXPECT_EQ(decoded.status().code(),
              StatusCode::ResourceExhausted);
    EXPECT_EQ(decoded.status().message(), "queue full");

    Result<std::vector<std::vector<float>>> latents =
        std::vector<std::vector<float>>{{1.0f, 2.0f}, {3.0f, 4.0f}};
    Result<std::vector<std::vector<float>>> latentsOut =
        Status::internal("unset");
    ASSERT_TRUE(ipc::decodeEncodeReply(
                    ipc::encodeEncodeReply(latents), &latentsOut)
                    .isOk());
    ASSERT_TRUE(latentsOut.isOk());
    EXPECT_EQ(latentsOut.value(), latents.value());
}

TEST(IpcWire, FramesRejectCorruption)
{
    int fds[2];
    ASSERT_TRUE(makeSocketPair(fds));
    FdGuard a(fds[0]);
    FdGuard b(fds[1]);

    // A valid frame round-trips.
    ASSERT_TRUE(ipc::writeFrame(a.get(), ipc::MsgType::kPing, 99,
                                {1, 2, 3}));
    ipc::Frame frame;
    ASSERT_EQ(ipc::readFrame(b.get(), &frame), ipc::ReadFrame::Ok);
    EXPECT_EQ(frame.type, ipc::MsgType::kPing);
    EXPECT_EQ(frame.id, 99u);
    EXPECT_EQ(frame.payload, (std::vector<std::uint8_t>{1, 2, 3}));

    // Bad magic is an error immediately.
    std::uint8_t junk[17] = {0};
    ASSERT_EQ(::write(a.get(), junk, sizeof(junk)),
              static_cast<ssize_t>(sizeof(junk)));
    EXPECT_EQ(ipc::readFrame(b.get(), &frame),
              ipc::ReadFrame::Error);

    // An oversized payload length is rejected without allocating.
    int fds2[2];
    ASSERT_TRUE(makeSocketPair(fds2));
    FdGuard c(fds2[0]);
    FdGuard d(fds2[1]);
    std::uint8_t header[17];
    std::uint32_t magic = ipc::kWireMagic;
    std::memcpy(header, &magic, 4);
    header[4] = 5; // kPing
    std::uint64_t id = 1;
    std::memcpy(header + 5, &id, 8);
    std::uint32_t huge = ipc::kMaxPayload + 1;
    std::memcpy(header + 13, &huge, 4);
    ASSERT_EQ(::write(c.get(), header, sizeof(header)),
              static_cast<ssize_t>(sizeof(header)));
    EXPECT_EQ(ipc::readFrame(d.get(), &frame),
              ipc::ReadFrame::Error);

    // A zero-length payload is a VALID frame (ping/pong/shutdown all
    // ship empty), not a degenerate one: header-only on the wire,
    // no payload read issued.
    ASSERT_TRUE(ipc::writeFrame(c.get(), ipc::MsgType::kPing, 7, {}));
    ASSERT_EQ(ipc::readFrame(d.get(), &frame), ipc::ReadFrame::Ok);
    EXPECT_EQ(frame.type, ipc::MsgType::kPing);
    EXPECT_EQ(frame.id, 7u);
    EXPECT_TRUE(frame.payload.empty());

    // u32 lengths near the max-frame bound: kMaxPayload + 1 and the
    // all-ones length are both rejected from the header alone — no
    // payload read, no allocation, no wraparound in header + len
    // arithmetic.
    std::uint32_t allOnes = 0xFFFFFFFFu;
    std::memcpy(header + 13, &allOnes, 4);
    ASSERT_EQ(::write(c.get(), header, sizeof(header)),
              static_cast<ssize_t>(sizeof(header)));
    EXPECT_EQ(ipc::readFrame(d.get(), &frame),
              ipc::ReadFrame::Error);

    // A frame torn mid-payload (peer died) is an Error, not Eof —
    // and a clean close between frames IS Eof.
    int fds3[2];
    ASSERT_TRUE(makeSocketPair(fds3));
    FdGuard e(fds3[0]);
    FdGuard f(fds3[1]);
    std::uint32_t len = 10;
    std::memcpy(header + 13, &len, 4);
    ASSERT_EQ(::write(e.get(), header, sizeof(header)),
              static_cast<ssize_t>(sizeof(header)));
    std::uint8_t half[3] = {1, 2, 3};
    ASSERT_EQ(::write(e.get(), half, sizeof(half)), 3);
    e.reset(); // "crash" mid-frame
    EXPECT_EQ(ipc::readFrame(f.get(), &frame),
              ipc::ReadFrame::Error);

    int fds4[2];
    ASSERT_TRUE(makeSocketPair(fds4));
    FdGuard g(fds4[0]);
    FdGuard h(fds4[1]);
    g.reset();
    EXPECT_EQ(ipc::readFrame(h.get(), &frame), ipc::ReadFrame::Eof);
}

TEST(IpcWire, WritersRefuseOversizedPayloads)
{
    // The writer enforces the same bound the reader does: an
    // oversized payload is refused up front (its u32 length field
    // would otherwise desynchronise the stream for every frame
    // after it). appendFrame must also leave the batch untouched so
    // a paired send cannot ship half a pair.
    std::vector<std::uint8_t> huge(ipc::kMaxPayload + 1, 0);
    std::vector<std::uint8_t> batch;
    EXPECT_FALSE(ipc::appendFrame(batch, ipc::MsgType::kPing, 1, huge));
    EXPECT_TRUE(batch.empty());

    int fds[2];
    ASSERT_TRUE(makeSocketPair(fds));
    FdGuard a(fds[0]);
    FdGuard b(fds[1]);
    EXPECT_FALSE(ipc::writeFrame(a.get(), ipc::MsgType::kPing, 1,
                                 huge));
    // Nothing was sent: the peer sees a clean EOF once we close,
    // not a torn frame.
    a.reset();
    ipc::Frame frame;
    EXPECT_EQ(ipc::readFrame(b.get(), &frame), ipc::ReadFrame::Eof);

    // At exactly the bound the frame is legal (boundary accepted).
    std::vector<std::uint8_t> atLimit(64, 0);
    batch.clear();
    EXPECT_TRUE(
        ipc::appendFrame(batch, ipc::MsgType::kPing, 2, atLimit));
    EXPECT_EQ(batch.size(), 17u + atLimit.size());
}

TEST(IpcWire, DecodersRejectLyingCountsWithoutAllocating)
{
    // Adversarial payloads whose count fields claim far more
    // elements than the payload could hold. Every decoder must fail
    // with a Status BEFORE sizing containers from the count — a
    // 12-byte frame claiming 4 billion rows must not OOM the
    // supervisor.
    const std::uint32_t kLie = 0xFFFFFFFFu;

    {
        ipc::Writer w;
        w.putU32(kLie); // treeCount
        ipc::CompareRequest req;
        EXPECT_FALSE(ipc::decodeCompareRequest(w.take(), &req).isOk());
    }
    {
        ipc::Writer w;
        w.putU32(0);    // no trees
        w.putU32(kLie); // pairCount
        ipc::CompareRequest req;
        EXPECT_FALSE(ipc::decodeCompareRequest(w.take(), &req).isOk());
    }
    {
        ipc::Writer w;
        w.putU32(kLie); // treeCount
        std::vector<Ast> trees;
        EXPECT_FALSE(ipc::decodeEncodeRequest(w.take(), &trees).isOk());
    }
    {
        ipc::Writer w;
        w.putU32(kLie); // digest pairCount
        std::vector<std::pair<AstDigest, AstDigest>> pairs;
        EXPECT_FALSE(
            ipc::decodeCompareDigestsRequest(w.take(), &pairs).isOk());
    }
    {
        ipc::Writer w;
        w.putU8(1);     // ok reply
        w.putU32(kLie); // probability count
        Result<std::vector<double>> reply = Status::internal("unset");
        EXPECT_FALSE(ipc::decodeCompareReply(w.take(), &reply).isOk());
    }
    {
        // rowCount lie with dim == 0: each claimed row costs zero
        // payload bytes, so only the explicit dim check stops
        // rows(rowCount) from allocating 4 billion empty vectors.
        ipc::Writer w;
        w.putU8(1);
        w.putU32(kLie); // rowCount
        w.putU32(0);    // dim
        Result<std::vector<std::vector<float>>> reply =
            Status::internal("unset");
        EXPECT_FALSE(ipc::decodeEncodeReply(w.take(), &reply).isOk());
    }
    {
        ipc::Writer w;
        w.putU8(1);
        w.putU32(1);    // one row...
        w.putU32(kLie); // ...of 4 billion floats
        Result<std::vector<std::vector<float>>> reply =
            Status::internal("unset");
        EXPECT_FALSE(ipc::decodeEncodeReply(w.take(), &reply).isOk());
    }

    // Legitimate empties still decode: zero trees, zero pairs, zero
    // rows — and an empty-payload ping frame has no decoder at all,
    // covered in FramesRejectCorruption.
    {
        ipc::Writer w;
        w.putU32(0);
        w.putU32(0);
        ipc::CompareRequest req;
        EXPECT_TRUE(ipc::decodeCompareRequest(w.take(), &req).isOk());
        EXPECT_TRUE(req.trees.empty());
        EXPECT_TRUE(req.pairs.empty());
    }
    {
        ipc::Writer w;
        w.putU8(1);
        w.putU32(0); // zero rows
        w.putU32(0); // dim 0 is legal ONLY with zero rows
        Result<std::vector<std::vector<float>>> reply =
            Status::internal("unset");
        EXPECT_TRUE(ipc::decodeEncodeReply(w.take(), &reply).isOk());
        ASSERT_TRUE(reply.isOk());
        EXPECT_TRUE(reply.value().empty());
    }

    // Truncation inside a fixed-width field (u32 cut to 2 bytes)
    // fails cleanly too.
    {
        std::vector<std::uint8_t> torn{0x01, 0x02};
        ipc::CompareRequest req;
        EXPECT_FALSE(ipc::decodeCompareRequest(torn, &req).isOk());
        std::vector<Ast> trees;
        EXPECT_FALSE(ipc::decodeEncodeRequest(torn, &trees).isOk());
    }
}

// ---------------------------------------------------- FaultInjector

TEST(FaultInjector, ParseGrammar)
{
    Result<ipc::FaultSpec> none = ipc::parseFaultSpec("");
    ASSERT_TRUE(none.isOk());
    EXPECT_FALSE(none.value().active());

    Result<ipc::FaultSpec> crash = ipc::parseFaultSpec("crash:3");
    ASSERT_TRUE(crash.isOk());
    EXPECT_EQ(crash.value().kind, ipc::FaultKind::Crash);
    EXPECT_EQ(crash.value().trigger, 3u);

    Result<ipc::FaultSpec> stall =
        ipc::parseFaultSpec("stall:2:500");
    ASSERT_TRUE(stall.isOk());
    EXPECT_EQ(stall.value().kind, ipc::FaultKind::Stall);
    EXPECT_EQ(stall.value().trigger, 2u);
    EXPECT_EQ(stall.value().stallMs, 500u);
    EXPECT_EQ(ipc::parseFaultSpec("stall:1").value().stallMs,
              60000u);

    EXPECT_EQ(ipc::parseFaultSpec("torn:1").value().kind,
              ipc::FaultKind::TornWrite);
    EXPECT_EQ(ipc::parseFaultSpec("eintr:8").value().kind,
              ipc::FaultKind::EintrStorm);

    for (const char* bad :
         {"crash", "crash:", "crash:0", "crash:x", "torn:1:5",
          "flood:3", "crash:3:extra"})
        EXPECT_FALSE(ipc::parseFaultSpec(bad).isOk()) << bad;
}

TEST(FaultInjector, FiresOnNthRequestExactlyOnce)
{
    ipc::FaultInjector faults(
        ipc::parseFaultSpec("crash:3").value());
    EXPECT_EQ(faults.onRequest(), ipc::FaultKind::None);
    EXPECT_EQ(faults.onRequest(), ipc::FaultKind::None);
    EXPECT_EQ(faults.onRequest(), ipc::FaultKind::Crash);
    // One-shot: request 4, 5, ... are clean (a respawned worker is
    // never re-armed, and even this one would not re-fire).
    EXPECT_EQ(faults.onRequest(), ipc::FaultKind::None);
    EXPECT_EQ(faults.requestCount(), 4u);
}

TEST(FaultInjector, EintrStormIsAbsorbedByIoRetries)
{
    // Arming an EINTR storm installs the fd_util interrupt hook;
    // every read/write syscall wrapper must retry transparently.
    ipc::FaultInjector faults(
        ipc::parseFaultSpec("eintr:6").value());
    ipc::installGlobalFaultInjector(&faults);

    int fds[2];
    ASSERT_TRUE(makeSocketPair(fds));
    FdGuard a(fds[0]);
    FdGuard b(fds[1]);
    const char msg[] = "interrupt storm";
    ASSERT_EQ(writeFull(a.get(), msg, sizeof(msg)), IoStatus::Ok);
    char buf[sizeof(msg)] = {0};
    ASSERT_EQ(readFull(b.get(), buf, sizeof(buf)), IoStatus::Ok);
    EXPECT_STREQ(buf, msg);

    ipc::installGlobalFaultInjector(nullptr);
    // The storm budget was actually consumed by the I/O above.
    EXPECT_FALSE(faults.consumeInterrupt());
}

// ---------------------------------------- worker loop (in-process)

TEST(WorkerLoop, ServesPingEncodeCompareOverSocketpair)
{
    Engine reference(tinyOptions());
    Ast a = tinyProgram(2);
    Ast b = tinyProgram(5);
    std::vector<Engine::PairRequest> pairs{{&a, &b}, {&b, &a}};
    std::vector<double> expected =
        reference.compareMany(pairs).value();

    int fds[2];
    ASSERT_TRUE(makeSocketPair(fds));
    FdGuard client(fds[0]);
    Engine workerEngine(tinyModel(), tinyOptions());
    ipc::FaultInjector faults;
    int workerRc = -1;
    std::thread worker([&, fd = fds[1]] {
        workerRc = ipc::runWorkerLoop(fd, workerEngine, faults);
        ::close(fd);
    });

    // Ping echoes the id as a pong.
    ASSERT_TRUE(ipc::writeFrame(client.get(), ipc::MsgType::kPing,
                                77, {}));
    ipc::Frame frame;
    ASSERT_EQ(ipc::readFrame(client.get(), &frame),
              ipc::ReadFrame::Ok);
    EXPECT_EQ(frame.type, ipc::MsgType::kPong);
    EXPECT_EQ(frame.id, 77u);

    // Encode returns one latent row per distinct tree.
    ipc::TreeBatch batch = ipc::makeTreeBatch(pairs);
    ASSERT_TRUE(ipc::writeFrame(
        client.get(), ipc::MsgType::kEncode, 78,
        ipc::encodeEncodeRequest(batch.trees)));
    ASSERT_EQ(ipc::readFrame(client.get(), &frame),
              ipc::ReadFrame::Ok);
    ASSERT_EQ(frame.type, ipc::MsgType::kEncodeReply);
    Result<std::vector<std::vector<float>>> latents =
        Status::internal("unset");
    ASSERT_TRUE(
        ipc::decodeEncodeReply(frame.payload, &latents).isOk());
    ASSERT_TRUE(latents.isOk());
    EXPECT_EQ(latents.value().size(), batch.trees.size());

    // Compare matches the synchronous Engine bitwise.
    ASSERT_TRUE(ipc::writeFrame(
        client.get(), ipc::MsgType::kCompare, 79,
        ipc::encodeCompareRequest(batch)));
    ASSERT_EQ(ipc::readFrame(client.get(), &frame),
              ipc::ReadFrame::Ok);
    ASSERT_EQ(frame.type, ipc::MsgType::kCompareReply);
    Result<std::vector<double>> probs = Status::internal("unset");
    ASSERT_TRUE(
        ipc::decodeCompareReply(frame.payload, &probs).isOk());
    ASSERT_TRUE(probs.isOk());
    EXPECT_EQ(probs.value(), expected);

    // kShutdown drains the loop with exit code 0.
    ASSERT_TRUE(ipc::writeFrame(client.get(),
                                ipc::MsgType::kShutdown, 80, {}));
    worker.join();
    EXPECT_EQ(workerRc, 0);
}

TEST(WorkerLoop, StallFaultDelaysTheNthReply)
{
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(2);
    std::vector<Engine::PairRequest> pairs{{&a, &b}};
    ipc::TreeBatch batch = ipc::makeTreeBatch(pairs);

    int fds[2];
    ASSERT_TRUE(makeSocketPair(fds));
    FdGuard client(fds[0]);
    Engine workerEngine(tinyModel(), tinyOptions());
    ipc::FaultInjector faults(
        ipc::parseFaultSpec("stall:1:80").value());
    std::thread worker([&, fd = fds[1]] {
        ipc::runWorkerLoop(fd, workerEngine, faults);
        ::close(fd);
    });

    auto start = std::chrono::steady_clock::now();
    ASSERT_TRUE(ipc::writeFrame(
        client.get(), ipc::MsgType::kCompare, 1,
        ipc::encodeCompareRequest(batch)));
    ipc::Frame frame;
    ASSERT_EQ(ipc::readFrame(client.get(), &frame),
              ipc::ReadFrame::Ok);
    auto elapsed = std::chrono::steady_clock::now() - start;
    // This is what the parent's RPC deadline fires on for real
    // hangs; in-process we just pin that the stall happened.
    EXPECT_GE(elapsed, 80ms);

    client.reset(); // EOF ends the loop
    worker.join();
}

// -------------------------------------------- ProcessShardedServer

TEST(ProcessShardedServer, CompareMatchesSynchronousEngineBitwise)
{
    Engine reference(tinyOptions());
    Ast a = tinyProgram(2);
    Ast b = tinyProgram(5);
    double expected = reference.compare(a, b).value();

    for (std::size_t shards : {1u, 2u, 4u}) {
        ProcessShardedServer server(tinyModel(), ipcOptions(shards));
        Result<double> got = server.submitCompare(a, b).get();
        ASSERT_TRUE(got.isOk()) << "shards=" << shards << ": "
                                << got.status().toString();
        EXPECT_EQ(got.value(), expected) << "shards=" << shards;
    }
}

TEST(ProcessShardedServer, SplitJoinAndRankParity)
{
    Engine reference(tinyOptions());
    std::vector<Ast> trees;
    for (int i = 1; i <= 5; ++i)
        trees.push_back(tinyProgram(i));
    std::vector<Engine::PairRequest> pairs;
    std::vector<const Ast*> candidates;
    for (std::size_t i = 0; i < trees.size(); ++i) {
        candidates.push_back(&trees[i]);
        for (std::size_t j = 0; j < trees.size(); ++j)
            if (i != j)
                pairs.push_back({&trees[i], &trees[j]});
    }
    std::vector<double> expected =
        reference.compareMany(pairs).value();

    ProcessShardedServer server(tinyModel(), ipcOptions(2));
    auto got = server.submitCompareMany(pairs).get();
    ASSERT_TRUE(got.isOk()) << got.status().toString();
    ASSERT_EQ(got.value().size(), expected.size());
    for (std::size_t k = 0; k < expected.size(); ++k)
        EXPECT_EQ(got.value()[k], expected[k]) << "pair " << k;

    // submitRank rides the same split/join machinery.
    auto ranked = server.submitRank(candidates).get();
    ASSERT_TRUE(ranked.isOk());
    std::vector<Engine::RankedCandidate> expectedRank =
        Engine::aggregateTournament(
            candidates.size(),
            reference
                .compareMany(Engine::tournamentPairs(candidates))
                .value());
    ASSERT_EQ(ranked.value().size(), expectedRank.size());
    for (std::size_t k = 0; k < expectedRank.size(); ++k) {
        EXPECT_EQ(ranked.value()[k].index, expectedRank[k].index);
        EXPECT_EQ(ranked.value()[k].meanProbFaster,
                  expectedRank[k].meanProbFaster);
    }
}

TEST(ProcessShardedServer, DeadlineExpiresWhileQueued)
{
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(2);
    ProcessShardedServer server(
        tinyModel(), ipcOptions(1).withStartPaused(true));
    auto expired = server.submitCompare(
        SubmitOptions().withDeadline(1000us), a, b);
    std::this_thread::sleep_for(50ms);
    server.start();
    Result<double> got = expired.get();
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), StatusCode::DeadlineExceeded);

    // A generous deadline still completes normally.
    auto fine = server.submitCompare(
        SubmitOptions().withDeadline(
            std::chrono::duration_cast<std::chrono::microseconds>(
                30s)),
        a, b);
    EXPECT_TRUE(fine.get().isOk());

    server.shutdown();
    ProcessShardedServerStats stats = server.stats();
    EXPECT_EQ(stats.aggregate.requestsSubmitted, 2u);
    EXPECT_EQ(stats.aggregate.requestsRejectedDeadline, 1u);
    EXPECT_EQ(stats.aggregate.requestsCompleted, 1u);
    // Conservation: submitted == completed + failed + deadline.
    EXPECT_EQ(stats.aggregate.requestsSubmitted,
              stats.aggregate.requestsCompleted +
                  stats.aggregate.requestsFailed +
                  stats.aggregate.requestsRejectedDeadline);
}

TEST(ProcessShardedServer, CrashDuringEncodeRetriesOnFreshWorker)
{
    Engine reference(tinyOptions());
    Ast a = tinyProgram(2);
    Ast b = tinyProgram(3);
    double expected = reference.compare(a, b).value();

    // Requests hit the worker as encode+compare per batch: #1/#2 for
    // the first submit, so crash:3 lands on the SECOND submit's
    // encode. Encode is idempotent — the server must respawn, retry,
    // and answer as if nothing happened.
    ProcessShardedServer server(
        tinyModel(), ipcOptions(1).withFault("crash:3"));
    for (int i = 0; i < 3; ++i) {
        Result<double> got = server.submitCompare(a, b).get();
        ASSERT_TRUE(got.isOk())
            << "submit " << i << ": " << got.status().toString();
        EXPECT_EQ(got.value(), expected) << "submit " << i;
    }
    ProcessShardedServerStats stats = server.stats();
    ASSERT_EQ(stats.health.size(), 1u);
    EXPECT_GE(stats.health[0].restarts, 1u);
    EXPECT_TRUE(stats.health[0].up);
    EXPECT_EQ(stats.aggregate.requestsCompleted, 3u);
    EXPECT_EQ(stats.aggregate.requestsFailed, 0u);
}

TEST(ProcessShardedServer, CrashDuringCompareFailsFastNoRetry)
{
    Engine reference(tinyOptions());
    Ast a = tinyProgram(2);
    Ast b = tinyProgram(3);

    MetricsRegistry registry;
    // crash:2 = the first submit's COMPARE phase: never retried, the
    // future must resolve Unavailable (attributed, not lost, not
    // double-executed).
    ProcessShardedServer server(tinyModel(),
                                ipcOptions(1)
                                    .withFault("crash:2")
                                    .withMetrics(&registry));
    Result<double> first = server.submitCompare(a, b).get();
    ASSERT_FALSE(first.isOk());
    EXPECT_EQ(first.status().code(), StatusCode::Unavailable);

    // The respawned (fault-free) worker rejoins and serves.
    Result<double> second = server.submitCompare(a, b).get();
    ASSERT_TRUE(second.isOk()) << second.status().toString();
    EXPECT_EQ(second.value(), reference.compare(a, b).value());

    ProcessShardedServerStats stats = server.stats();
    EXPECT_GE(stats.health[0].restarts, 1u);
    EXPECT_EQ(stats.aggregate.requestsFailed, 1u);
    EXPECT_EQ(stats.aggregate.requestsCompleted, 1u);
    EXPECT_EQ(stats.aggregate.requestsSubmitted,
              stats.aggregate.requestsCompleted +
                  stats.aggregate.requestsFailed +
                  stats.aggregate.requestsRejectedDeadline);

    std::string exposition = registry.expose();
    EXPECT_NE(exposition.find("ccsa_worker_restarts_total{server="
                              "\"ipc\",shard=\"0\"}"),
              std::string::npos);
    EXPECT_NE(exposition.find("ccsa_worker_up"), std::string::npos);
    EXPECT_NE(exposition.find("ccsa_shard_degraded"),
              std::string::npos);
}

TEST(ProcessShardedServer, TornWriteIsTreatedAsCrash)
{
    Engine reference(tinyOptions());
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(4);

    // torn:2 = the first submit's compare reply is cut mid-frame and
    // the worker exits. The parent must fail the batch (never parse
    // the torn bytes) and recover on respawn.
    ProcessShardedServer server(
        tinyModel(), ipcOptions(1).withFault("torn:2"));
    Result<double> first = server.submitCompare(a, b).get();
    ASSERT_FALSE(first.isOk());
    EXPECT_EQ(first.status().code(), StatusCode::Unavailable);

    Result<double> second = server.submitCompare(a, b).get();
    ASSERT_TRUE(second.isOk()) << second.status().toString();
    EXPECT_EQ(second.value(), reference.compare(a, b).value());
    EXPECT_GE(server.stats().health[0].restarts, 1u);
}

TEST(ProcessShardedServer, StallTripsRpcDeadline)
{
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(3);

    // The injected stall (10 s) far exceeds the 200 ms RPC deadline:
    // the parent must declare the worker hung, kill it, and answer
    // DeadlineExceeded instead of waiting out the stall.
    ProcessShardedServer server(tinyModel(),
                                ipcOptions(1)
                                    .withFault("stall:1:10000")
                                    .withRpcDeadline(200ms));
    auto start = std::chrono::steady_clock::now();
    Result<double> got = server.submitCompare(a, b).get();
    auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), StatusCode::DeadlineExceeded);
    EXPECT_LT(elapsed, 5s);

    // Hang handling = kill + respawn, same as a crash.
    Result<double> after = server.submitCompare(a, b).get();
    EXPECT_TRUE(after.isOk()) << after.status().toString();
    EXPECT_GE(server.stats().health[0].restarts, 1u);
}

TEST(ProcessShardedServer, Kill9MidBatchUnderLoadLosesNothing)
{
    Engine reference(tinyOptions());
    std::vector<Ast> trees;
    for (int i = 1; i <= 6; ++i)
        trees.push_back(tinyProgram(i));

    // Precompute every producer's requests AND expected values
    // before any thread starts (deterministic schedule).
    constexpr int kProducers = 6;
    constexpr int kRequests = 12;
    using PairList = std::vector<Engine::PairRequest>;
    std::vector<std::vector<PairList>> plans(kProducers);
    std::vector<std::vector<std::vector<double>>> expected(
        kProducers);
    for (int p = 0; p < kProducers; ++p) {
        for (int r = 0; r < kRequests; ++r) {
            PairList pairs;
            for (int k = 0; k < 3; ++k) {
                std::size_t i = (p + r + k) % trees.size();
                std::size_t j = (p + r + 2 * k + 1) % trees.size();
                if (i == j)
                    j = (j + 1) % trees.size();
                pairs.push_back({&trees[i], &trees[j]});
            }
            expected[p].push_back(
                reference.compareMany(pairs).value());
            plans[p].push_back(std::move(pairs));
        }
    }

    ProcessShardedServer server(tinyModel(), ipcOptions(2));
    // Grab a live victim pid before the load starts.
    pid_t victim = server.stats().health[0].pid;
    ASSERT_GT(victim, 0);

    std::atomic<int> resolved{0};
    std::atomic<int> valueMismatches{0};
    std::atomic<int> okCount{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int r = 0; r < kRequests; ++r) {
                Result<std::vector<double>> got =
                    server.submitCompareMany(plans[p][r]).get();
                resolved++;
                if (got.isOk()) {
                    okCount++;
                    // Any answered request must carry the sync
                    // Engine's exact values — crash recovery must
                    // never degrade to approximately-right.
                    if (got.value() != expected[p][r])
                        valueMismatches++;
                } else {
                    // Attributed failure, never a hang or a loss.
                    StatusCode code = got.status().code();
                    if (code != StatusCode::Unavailable &&
                        code != StatusCode::DeadlineExceeded)
                        valueMismatches++;
                }
            }
        });
    }
    std::this_thread::sleep_for(30ms); // mid-load
    ASSERT_EQ(::kill(victim, SIGKILL), 0);
    for (std::thread& t : producers)
        t.join();

    // EVERY submitted request resolved.
    EXPECT_EQ(resolved.load(), kProducers * kRequests);
    EXPECT_EQ(valueMismatches.load(), 0);
    // The kill can only fail batches in flight on one shard; the
    // bulk of the run must still have been served.
    EXPECT_GT(okCount.load(), 0);

    // The respawned worker rejoined: a full-parity sweep succeeds.
    std::vector<Engine::PairRequest> sweep;
    for (std::size_t i = 0; i < trees.size(); ++i)
        for (std::size_t j = 0; j < trees.size(); ++j)
            if (i != j)
                sweep.push_back({&trees[i], &trees[j]});
    std::vector<double> sweepExpected =
        reference.compareMany(sweep).value();
    auto after = server.submitCompareMany(sweep).get();
    ASSERT_TRUE(after.isOk()) << after.status().toString();
    EXPECT_EQ(after.value(), sweepExpected);

    server.shutdown();
    ProcessShardedServerStats stats = server.stats();
    std::uint64_t restarts = 0;
    for (const WorkerHealth& h : stats.health)
        restarts += h.restarts;
    EXPECT_GE(restarts, 1u);
    EXPECT_EQ(stats.aggregate.requestsSubmitted,
              stats.aggregate.requestsCompleted +
                  stats.aggregate.requestsFailed +
                  stats.aggregate.requestsRejectedDeadline);
}

TEST(ProcessShardedServer, UnspawnableWorkerOpensBreaker)
{
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(2);
    ProcessShardedServer server(
        tinyModel(),
        ipcOptions(1)
            .withWorkerPath("/nonexistent/ccsa_worker")
            .withBackoff(1ms, 5ms)
            .withBreaker(2, 10s, 10s)
            .withHeartbeatInterval(5ms));

    // The eager spawn fails, the supervisor's retry fails, and two
    // failures inside the window open the breaker.
    bool degraded = false;
    for (int i = 0; i < 400 && !degraded; ++i) {
        std::this_thread::sleep_for(5ms);
        degraded = server.stats().health[0].degraded;
    }
    EXPECT_TRUE(degraded);
    EXPECT_FALSE(server.stats().health[0].up);

    // An open breaker fails fast with an attributed status; the
    // request is answered, not stranded.
    Result<double> got = server.submitCompare(a, b).get();
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), StatusCode::Unavailable);
}

TEST(ProcessShardedServer, ShutdownDrainsAcceptedRequests)
{
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(3);
    ProcessShardedServer server(
        tinyModel(), ipcOptions(2).withStartPaused(true));
    std::vector<std::future<Result<double>>> futures;
    for (int i = 0; i < 8; ++i)
        futures.push_back(server.submitCompare(a, b));
    // Never started — shutdown must still answer everything it
    // accepted (drain, not shed).
    server.shutdown();
    for (auto& f : futures)
        EXPECT_TRUE(f.get().isOk());
    EXPECT_TRUE(server.isShutdown());
    // And submits after shutdown resolve Unavailable immediately.
    Result<double> late = server.submitCompare(a, b).get();
    ASSERT_FALSE(late.isOk());
    EXPECT_EQ(late.status().code(), StatusCode::Unavailable);
}

} // namespace
} // namespace ccsa
