/**
 * @file
 * Tests for the cost interpreter and the simulated judge: symbolic
 * trip counting (linear, quadratic, sqrt, logarithmic), construct
 * costs (I/O, endl, pass-by-value), recursion handling, and the
 * end-to-end property that asymptotically faster variants of every
 * problem family receive smaller runtimes.
 */

#include <gtest/gtest.h>

#include "codegen/generator.hh"
#include "dataset/problem.hh"
#include "frontend/parser.hh"
#include "judge/judge.hh"

namespace ccsa
{
namespace
{

double
costOf(const std::string& body, double n)
{
    Ast ast = parseSource(body);
    CostInterpreter interp(ast);
    return interp.programCost({{"n", n}, {"m", n}, {"q", n},
                               {"t", n}, {"x", n}});
}

TEST(Interpreter, LinearLoopScalesLinearly)
{
    std::string src =
        "int main() { int n; cin >> n; long long s = 0;"
        " for (int i = 0; i < n; i++) { s += i; } return 0; }";
    double c1 = costOf(src, 1e3);
    double c2 = costOf(src, 1e4);
    EXPECT_NEAR(c2 / c1, 10.0, 1.5);
}

TEST(Interpreter, NestedLoopScalesQuadratically)
{
    std::string src =
        "int main() { int n; cin >> n; long long s = 0;"
        " for (int i = 0; i < n; i++)"
        " for (int j = 0; j < n; j++) s += j; return 0; }";
    double c1 = costOf(src, 100);
    double c2 = costOf(src, 1000);
    EXPECT_NEAR(c2 / c1, 100.0, 20.0);
}

TEST(Interpreter, TriangularLoopHalvesQuadratic)
{
    std::string full =
        "int main() { int n; cin >> n; long long s = 0;"
        " for (int i = 0; i < n; i++)"
        " for (int j = 0; j < n; j++) s += j; return 0; }";
    std::string tri =
        "int main() { int n; cin >> n; long long s = 0;"
        " for (int i = 0; i < n; i++)"
        " for (int j = 0; j < i; j++) s += j; return 0; }";
    double cf = costOf(full, 2000);
    double ct = costOf(tri, 2000);
    EXPECT_NEAR(cf / ct, 2.0, 0.5);
}

TEST(Interpreter, SqrtLoopScalesAsRoot)
{
    std::string src =
        "int main() { long long x; cin >> x; int c = 0;"
        " for (long long d = 2; d * d <= x; d++)"
        " { if (x % d == 0) c++; } return 0; }";
    double c1 = costOf(src, 1e4);  // sqrt = 100
    double c2 = costOf(src, 1e8);  // sqrt = 10000
    EXPECT_NEAR(c2 / c1, 100.0, 25.0);
}

TEST(Interpreter, HalvingWhileIsLogarithmic)
{
    std::string src =
        "int main() { int n; cin >> n; int x = n; int c = 0;"
        " while (x > 1) { x /= 2; c++; } return 0; }";
    double c1 = costOf(src, 1e3);
    double c2 = costOf(src, 1e6);
    // log2(1e6)/log2(1e3) = 2 => far from linear 1000x.
    EXPECT_LT(c2 / c1, 3.0);
    EXPECT_GT(c2, c1);
}

TEST(Interpreter, DoublingWhileSetsVarToBound)
{
    std::string src =
        "int main() { int n; cin >> n; int sz = 1;"
        " while (sz < n) sz *= 2;"
        " for (int i = 0; i < sz; i++) { int y = i; } return 0; }";
    double c1 = costOf(src, 1e3);
    double c2 = costOf(src, 1e5);
    // The second loop must scale with n through sz.
    EXPECT_GT(c2 / c1, 30.0);
}

TEST(Interpreter, CountdownWhileCountsTests)
{
    std::string src =
        "int main() { int t; cin >> t;"
        " while (t > 0) { t--; int z = 0; } return 0; }";
    double c1 = costOf(src, 100);
    double c2 = costOf(src, 1000);
    EXPECT_NEAR(c2 / c1, 10.0, 2.0);
}

TEST(Interpreter, BinarySearchIsLogarithmic)
{
    std::string src =
        "int main() { int n; cin >> n; int lo = 0; int hi = n;"
        " while (lo < hi) { int mid = (lo + hi) / 2;"
        " if (mid < 17) lo = mid + 1; else hi = mid; } return 0; }";
    double c1 = costOf(src, 1e3);
    double c2 = costOf(src, 1e6);
    EXPECT_LT(c2 / c1, 3.0);
}

TEST(Interpreter, SortCallChargesNLogN)
{
    std::string with_sort =
        "int main() { int n; cin >> n; vector<int> a(n, 0);"
        " sort(a.begin(), a.end()); return 0; }";
    std::string without =
        "int main() { int n; cin >> n; vector<int> a(n, 0);"
        " return 0; }";
    double n = 1e5;
    double diff = costOf(with_sort, n) - costOf(without, n);
    // ~ sortFactor * n log2 n.
    EXPECT_GT(diff, n * 10);
    EXPECT_LT(diff, n * 120);
}

TEST(Interpreter, EndlFlushCostsMoreThanNewline)
{
    std::string flush =
        "int main() { int n; cin >> n;"
        " for (int i = 0; i < n; i++) cout << i << endl;"
        " return 0; }";
    std::string newline =
        "int main() { int n; cin >> n;"
        " for (int i = 0; i < n; i++) cout << i << \"\\n\";"
        " return 0; }";
    EXPECT_GT(costOf(flush, 1e4), 1.5 * costOf(newline, 1e4));
}

TEST(Interpreter, PassByValueVectorCostsCopy)
{
    std::string by_value =
        "int f(vector<int> a, int k) { return k; }\n"
        "int main() { int n; cin >> n; vector<int> a(n, 0);"
        " for (int i = 0; i < n; i++) { int z = f(a, i); }"
        " return 0; }";
    std::string by_ref =
        "int f(vector<int>& a, int k) { return k; }\n"
        "int main() { int n; cin >> n; vector<int> a(n, 0);"
        " for (int i = 0; i < n; i++) { int z = f(a, i); }"
        " return 0; }";
    // Copying inside the loop turns O(n) into O(n^2).
    EXPECT_GT(costOf(by_value, 3000), 5.0 * costOf(by_ref, 3000));
}

TEST(Interpreter, TraversalRecursionIsLinearNotQuadratic)
{
    // dfs with memo guard called from a loop over all nodes: the
    // whole traversal must be charged once, not once per call site.
    std::string src =
        "vector<vector<int>> adj(100005);\n"
        "int state[100005];\n"
        "void dfs(int u) {\n"
        "    if (state[u] == 2) return;\n"
        "    state[u] = 2;\n"
        "    for (int e = 0; e < adj[u].size(); e++) dfs(adj[u][e]);\n"
        "}\n"
        "int main() { int n; cin >> n;\n"
        "    for (int i = 1; i <= n; i++) { if (state[i] == 0)"
        " dfs(i); }\n"
        "    return 0; }";
    double c1 = costOf(src, 1e3);
    double c2 = costOf(src, 1e4);
    EXPECT_NEAR(c2 / c1, 10.0, 4.0);
}

TEST(Interpreter, GcdRecursionChargedPerCall)
{
    std::string src =
        "long long gcdFn(long long a, long long b) {\n"
        "    if (b == 0) return a;\n"
        "    return gcdFn(b, a % b);\n"
        "}\n"
        "int main() { int n; cin >> n; long long g = 0;\n"
        "    for (int i = 0; i < n; i++) g = gcdFn(g, i);\n"
        "    return 0; }";
    double c1 = costOf(src, 1e3);
    double c2 = costOf(src, 1e4);
    // O(n log n): gcd charged each iteration with log-depth cost.
    EXPECT_GT(c2 / c1, 8.0);
    EXPECT_LT(c2 / c1, 20.0);
}

TEST(Interpreter, GlobalConstantsPropagate)
{
    std::string src =
        "const int LIM = 50000;\n"
        "int main() { long long s = 0;"
        " for (int i = 0; i < LIM; i++) s += i; return 0; }";
    EXPECT_GT(costOf(src, 10), 50000.0);
}

TEST(Interpreter, MissingMainFatal)
{
    Ast ast = parseSource("int helper() { return 1; }");
    CostInterpreter interp(ast);
    EXPECT_THROW(interp.programCost({}), FatalError);
}

// ---------------------------------------------------------------- //

TEST(Judge, LadderSpansSizes)
{
    auto sizes = JudgeConfig::ladder(1600, 5);
    ASSERT_EQ(sizes.size(), 5u);
    EXPECT_NEAR(sizes.front(), 100.0, 1.0);
    EXPECT_NEAR(sizes.back(), 1600.0, 1.0);
    for (std::size_t i = 1; i < sizes.size(); ++i)
        EXPECT_GT(sizes[i], sizes[i - 1]);
}

TEST(Judge, NoiseIsBoundedAndSeeded)
{
    const ProblemSpec& spec = tableISpec(ProblemFamily::E);
    SimulatedJudge judge(spec.judge);
    auto gen = makeGenerator(spec.family, 0);
    Rng grng(3);
    Ast ast = parseAndPrune(gen->generateVariant(0, grng).source);

    Rng r1(5), r2(5), r3(6);
    double a = judge.run(ast, r1);
    double b = judge.run(ast, r2);
    double c = judge.run(ast, r3);
    EXPECT_DOUBLE_EQ(a, b);  // same seed, same measurement
    EXPECT_NE(a, c);         // different seed jitters
    double det = judge.deterministicMs(ast);
    EXPECT_NEAR(a, det, det * 0.5);
}

class FamilyMonotonicityTest
    : public ::testing::TestWithParam<int>
{
};

TEST_P(FamilyMonotonicityTest, FasterVariantsJudgeFaster)
{
    auto family = static_cast<ProblemFamily>(GetParam());
    const ProblemSpec& spec = tableISpec(family);
    SimulatedJudge judge(spec.judge);
    auto gen = makeGenerator(family, 0);

    // Average deterministic runtimes over a few style draws.
    std::vector<double> mean_ms(gen->numVariants(), 0.0);
    const int reps = 4;
    for (int v = 0; v < gen->numVariants(); ++v) {
        Rng rng(100 + static_cast<std::uint64_t>(v));
        for (int r = 0; r < reps; ++r) {
            Ast ast = parseAndPrune(
                gen->generateVariant(v, rng).source);
            mean_ms[v] += judge.deterministicMs(ast) / reps;
        }
    }
    // The asymptotically slowest variant must dominate the fastest
    // by a clear margin; the middle variant must not beat the
    // fastest by more than noise.
    int last = gen->numVariants() - 1;
    EXPECT_GT(mean_ms[last], 1.5 * mean_ms[0])
        << "slow variant not slower";
    for (int v = 0; v + 1 < gen->numVariants(); ++v)
        EXPECT_LT(mean_ms[v], mean_ms[last]);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyMonotonicityTest,
                         ::testing::Range(0, kNumFamilies));

TEST(Judge, EmptyConfigFatal)
{
    JudgeConfig cfg;
    EXPECT_THROW(SimulatedJudge{cfg}, FatalError);
}

} // namespace
} // namespace ccsa
