/**
 * @file
 * Tests for the metrics plane (ISSUE 7): WindowedHistogram ring
 * rotation under a fake clock (spike ages out of the window while
 * the lifetime histogram remembers it — the acceptance contract),
 * empty-window quantiles, cross-shard window merges, clock jumps
 * larger than the whole window; Counter::increaseTo monotonicity;
 * MetricsRegistry exposition format (HELP/TYPE headers, label
 * sorting + escaping, cumulative histogram buckets, window summary)
 * and family-kind conflicts; SloTracker burn-rate rise and
 * recovery; MetricsSampler probes and exposition dumps; the
 * TraceRecorder drop counter; EncodingCache resident-byte
 * accounting; and the end-to-end wiring through AsyncServer /
 * ShardedServer / Engine.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "frontend/parser.hh"
#include "serve/async_server.hh"
#include "serve/encoding_cache.hh"
#include "serve/metrics/metrics.hh"
#include "serve/metrics/metrics_sampler.hh"
#include "serve/metrics/slo_tracker.hh"
#include "serve/sharded_server.hh"
#include "serve/trace/trace_recorder.hh"

namespace ccsa
{
namespace
{

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::seconds;
using Clock = std::chrono::steady_clock;

/** Fixed origin so every test's fake timeline is deterministic. */
Clock::time_point
t0()
{
    return Clock::time_point(seconds(1000));
}

WindowedHistogram::Options
smallWindow()
{
    // 4 buckets x 1s: window spans 4s.
    return WindowedHistogram::Options()
        .withBucketWidth(seconds(1))
        .withNumBuckets(4);
}

Ast
tinyProgram(int loops)
{
    std::string src = "int main() {\n int n;\n cin >> n;\n";
    for (int i = 0; i < loops; ++i) {
        std::string v = "i" + std::to_string(i);
        src += " for (int " + v + " = 0; " + v + " < n; " + v +
            "++) { int z" + std::to_string(i) + " = " + v + "; }\n";
    }
    src += " return 0;\n}\n";
    return parseAndPrune(src);
}

Engine::Options
tinyOptions()
{
    return Engine::Options()
        .withEmbedDim(8)
        .withHiddenDim(8)
        .withSeed(7)
        .withThreads(0)
        .withCacheCapacity(256);
}

} // namespace

// --------------------------------------------- WindowedHistogram

TEST(WindowedHistogram, SamplesLandInWindowAndLifetime)
{
    WindowedHistogram h(smallWindow(), t0());
    h.add(10, t0() + milliseconds(100));
    h.add(20, t0() + milliseconds(200));

    Histogram window = h.window(t0() + milliseconds(300));
    EXPECT_EQ(window.count(), 2u);
    EXPECT_EQ(window.sum(), 30u);
    EXPECT_EQ(h.lifetime().count(), 2u);
}

TEST(WindowedHistogram, SpikeAgesOutOfWindowButNotLifetime)
{
    // The acceptance contract: a latency spike leaves the windowed
    // p99 once the window rotates past it, while the lifetime
    // histogram retains it forever.
    WindowedHistogram h(smallWindow(), t0());
    h.add(100000, t0() + milliseconds(500)); // 100 ms spike, bucket 0

    // Still visible while bucket 0 is inside the 4-bucket window.
    EXPECT_GE(h.window(t0() + seconds(3)).quantileUpperBound(0.99),
              100000u);

    // Fast traffic after the spike, in later buckets.
    for (int i = 0; i < 100; ++i)
        h.add(50, t0() + seconds(5) + milliseconds(10 * i));

    // At t0+6s the window covers seqs 3..6: bucket 0 has aged out.
    Histogram window = h.window(t0() + seconds(6));
    EXPECT_EQ(window.count(), 100u);
    EXPECT_LT(window.quantileUpperBound(0.99), 100u);

    Histogram life = h.lifetime();
    EXPECT_EQ(life.count(), 101u);
    EXPECT_GE(life.max(), 100000u);
    EXPECT_GE(life.quantileUpperBound(0.999), 100000u);
}

TEST(WindowedHistogram, RotationAcrossBucketBoundaries)
{
    WindowedHistogram h(smallWindow(), t0());
    // One sample per bucket for 6 consecutive buckets; the ring
    // only holds 4, so by the last add the first two are gone.
    for (int b = 0; b < 6; ++b)
        h.add(static_cast<std::size_t>(b + 1),
              t0() + seconds(b) + milliseconds(500));

    Histogram window = h.window(t0() + seconds(5) + milliseconds(600));
    EXPECT_EQ(window.count(), 4u);       // buckets 2..5 live
    EXPECT_EQ(window.sum(), 3u + 4u + 5u + 6u);
    EXPECT_EQ(h.lifetime().count(), 6u);
}

TEST(WindowedHistogram, EmptyWindowQuantilesAreZero)
{
    WindowedHistogram h(smallWindow(), t0());
    EXPECT_EQ(h.window(t0()).count(), 0u);
    EXPECT_EQ(h.window(t0()).quantileUpperBound(0.99), 0u);

    h.add(1000, t0());
    // After the whole ring rotates past the sample, the window is
    // empty again even though nothing new was added.
    Histogram later = h.window(t0() + seconds(60));
    EXPECT_EQ(later.count(), 0u);
    EXPECT_EQ(later.quantileUpperBound(0.5), 0u);
}

TEST(WindowedHistogram, ClockJumpLargerThanWholeWindow)
{
    WindowedHistogram h(smallWindow(), t0());
    h.add(7, t0());
    h.add(8, t0() + milliseconds(100));

    // Jump 1000 buckets ahead: every slot is stale and must clear —
    // including the wrap positions the naive "clear skipped seqs"
    // loop would miss.
    Clock::time_point far = t0() + seconds(1000);
    EXPECT_EQ(h.window(far).count(), 0u);

    // The ring keeps working after the jump.
    h.add(9, far);
    EXPECT_EQ(h.window(far).count(), 1u);
    EXPECT_EQ(h.lifetime().count(), 3u);
}

TEST(WindowedHistogram, TimeNeverRunsBackwards)
{
    WindowedHistogram h(smallWindow(), t0());
    h.add(1, t0() + seconds(3));
    // A sample stamped before the newest bucket lands in the newest
    // bucket instead of resurrecting an aged-out one.
    h.add(2, t0() + seconds(1));
    Histogram window = h.window(t0() + seconds(3));
    EXPECT_EQ(window.count(), 2u);
}

TEST(WindowedHistogram, WindowsMergeAcrossShards)
{
    // Per-shard windowed histograms aggregate the same way lifetime
    // ones do: merge the window() snapshots taken at one instant.
    WindowedHistogram shard0(smallWindow(), t0());
    WindowedHistogram shard1(smallWindow(), t0());
    for (int i = 0; i < 50; ++i)
        shard0.add(10, t0() + milliseconds(i));
    for (int i = 0; i < 50; ++i)
        shard1.add(1000, t0() + milliseconds(i));

    Clock::time_point at = t0() + seconds(1);
    Histogram merged = shard0.window(at);
    merged.merge(shard1.window(at));
    EXPECT_EQ(merged.count(), 100u);
    // p50 sits in the fast shard's range, p99 in the slow shard's.
    EXPECT_LT(merged.quantileUpperBound(0.49), 1000u);
    EXPECT_GE(merged.quantileUpperBound(0.99), 1000u);

    // After rotation both shards' windows drain in lockstep.
    Clock::time_point later = t0() + seconds(10);
    Histogram drained = shard0.window(later);
    drained.merge(shard1.window(later));
    EXPECT_EQ(drained.count(), 0u);
}

// ------------------------------------------------------- Counter

TEST(Counter, IncreaseToIsMonotoneAndIdempotent)
{
    Counter c;
    c.increaseTo(10);
    EXPECT_EQ(c.value(), 10u);
    c.increaseTo(10); // idempotent republish
    EXPECT_EQ(c.value(), 10u);
    c.increaseTo(5); // never moves backwards
    EXPECT_EQ(c.value(), 10u);
    c.increaseTo(25);
    EXPECT_EQ(c.value(), 25u);
    c.inc(5);
    EXPECT_EQ(c.value(), 30u);
}

// ----------------------------------------------- MetricsRegistry

TEST(MetricsRegistry, LabelRenderingSortsAndEscapes)
{
    EXPECT_EQ(renderMetricLabels({}), "");
    EXPECT_EQ(renderMetricLabels({{"b", "2"}, {"a", "1"}}),
              "{a=\"1\",b=\"2\"}");
    EXPECT_EQ(renderMetricLabels({{"k", "a\"b\\c\nd"}}),
              "{k=\"a\\\"b\\\\c\\nd\"}");
}

TEST(MetricsRegistry, InstrumentReferencesAreStable)
{
    MetricsRegistry registry;
    Counter& a = registry.counter("x_total", {{"t", "1"}});
    Counter& b = registry.counter("x_total", {{"t", "1"}});
    EXPECT_EQ(&a, &b);
    // Label order does not matter.
    Gauge& g1 = registry.gauge("y", {{"a", "1"}, {"b", "2"}});
    Gauge& g2 = registry.gauge("y", {{"b", "2"}, {"a", "1"}});
    EXPECT_EQ(&g1, &g2);
}

TEST(MetricsRegistry, FamilyKindConflictIsFatal)
{
    MetricsRegistry registry;
    registry.counter("clash_total");
    EXPECT_THROW(registry.gauge("clash_total"), FatalError);
    EXPECT_THROW(registry.windowedHistogram("clash_total"),
                 FatalError);
}

TEST(MetricsRegistry, ExposesCountersAndGauges)
{
    MetricsRegistry registry;
    registry.counter("b_total", {{"k", "v"}}, "b help").inc(3);
    registry.gauge("a_gauge", {}, "a help").set(1.5);

    std::string text = registry.expose();
    // Families render in name order with HELP/TYPE headers.
    EXPECT_LT(text.find("# HELP a_gauge a help"),
              text.find("# HELP b_total b help"));
    EXPECT_NE(text.find("# TYPE a_gauge gauge"), std::string::npos);
    EXPECT_NE(text.find("# TYPE b_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("a_gauge 1.5\n"), std::string::npos);
    EXPECT_NE(text.find("b_total{k=\"v\"} 3\n"), std::string::npos);
}

TEST(MetricsRegistry, ExposesWindowedHistogramAndWindowSummary)
{
    Clock::time_point fakeNow = t0() + milliseconds(500);
    MetricsRegistry registry([&] { return fakeNow; });
    WindowedHistogram& h = registry.windowedHistogram(
        "lat_us", {{"m", "x"}}, smallWindow(), "latency");
    h.add(3, registry.now());
    h.add(100, registry.now());

    std::string text = registry.expose();
    EXPECT_NE(text.find("# TYPE lat_us histogram"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE lat_us_window summary"),
              std::string::npos);
    // Cumulative lifetime buckets end at +Inf == _count.
    EXPECT_NE(text.find("lat_us_bucket{m=\"x\",le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("lat_us_sum{m=\"x\"} 103"),
              std::string::npos);
    EXPECT_NE(text.find("lat_us_count{m=\"x\"} 2"),
              std::string::npos);
    // The window summary reports quantiles of the live window.
    EXPECT_NE(text.find("lat_us_window{m=\"x\",quantile=\"0.99\"}"),
              std::string::npos);
    EXPECT_NE(text.find("lat_us_window_count{m=\"x\"} 2"),
              std::string::npos);

    // Cumulative bucket counts are monotone non-decreasing in le.
    std::istringstream lines(text);
    std::string line;
    std::uint64_t prev = 0;
    int buckets = 0;
    while (std::getline(lines, line)) {
        if (line.rfind("lat_us_bucket", 0) != 0)
            continue;
        std::uint64_t value =
            std::stoull(line.substr(line.rfind(' ') + 1));
        EXPECT_GE(value, prev) << line;
        prev = value;
        ++buckets;
    }
    EXPECT_GT(buckets, 2);

    // After the window rotates dry, the summary empties but the
    // lifetime histogram keeps its counts (scrape monotonicity).
    fakeNow += seconds(60);
    std::string later = registry.expose();
    EXPECT_NE(later.find("lat_us_window_count{m=\"x\"} 0"),
              std::string::npos);
    EXPECT_NE(later.find("lat_us_count{m=\"x\"} 2"),
              std::string::npos);
}

TEST(MetricsRegistry, ExposeToFileWritesAtomically)
{
    MetricsRegistry registry;
    registry.counter("file_total").inc(9);
    std::string path = "test_metrics_expose.prom";
    ASSERT_TRUE(registry.exposeToFile(path).isOk());
    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("file_total 9"), std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------- SloTracker

TEST(SloTracker, BurnRateRisesAndRecovers)
{
    Clock::time_point fakeNow = t0();
    MetricsRegistry registry([&] { return fakeNow; });
    SloTracker slo(registry);
    slo.setObjective("m", "t",
                     SloTracker::Objective()
                         .withLatencyThresholdUs(100)
                         .withTargetGoodFraction(0.9)
                         .withWindow(smallWindow()));

    // 8 good, 2 bad inside the window: bad fraction 0.2 against a
    // 0.1 budget -> burn rate 2.
    for (int i = 0; i < 8; ++i)
        slo.record("m", "t", 50, fakeNow);
    for (int i = 0; i < 2; ++i)
        slo.record("m", "t", 500, fakeNow);

    SloTracker::WindowCounts counts =
        slo.windowCounts("m", "t", fakeNow);
    EXPECT_EQ(counts.good, 8u);
    EXPECT_EQ(counts.bad, 2u);
    EXPECT_NEAR(slo.burnRate("m", "t", fakeNow), 2.0, 1e-9);
    EXPECT_EQ(registry.counter("ccsa_slo_good_total",
                               {{"model", "m"}, {"tenant", "t"}})
                  .value(),
              8u);
    EXPECT_EQ(registry.counter("ccsa_slo_bad_total",
                               {{"model", "m"}, {"tenant", "t"}})
                  .value(),
              2u);

    slo.publishGauges(fakeNow);
    EXPECT_NEAR(registry.gauge("ccsa_slo_burn_rate",
                               {{"model", "m"}, {"tenant", "t"}})
                    .value(),
                2.0, 1e-9);

    // The incident ages out of the window: burn recovers to 0 even
    // though the lifetime bad counter remembers it.
    fakeNow += seconds(10);
    EXPECT_EQ(slo.burnRate("m", "t", fakeNow), 0.0);
    slo.publishGauges(fakeNow);
    EXPECT_EQ(registry.gauge("ccsa_slo_burn_rate",
                             {{"model", "m"}, {"tenant", "t"}})
                  .value(),
              0.0);
    EXPECT_EQ(registry.counter("ccsa_slo_bad_total",
                               {{"model", "m"}, {"tenant", "t"}})
                  .value(),
              2u);
}

TEST(SloTracker, UnregisteredPairsAreIgnored)
{
    MetricsRegistry registry;
    SloTracker slo(registry);
    slo.record("ghost", "t", 12345); // must be a silent no-op
    EXPECT_FALSE(slo.hasObjective("ghost", "t"));
    EXPECT_EQ(slo.burnRate("ghost", "t"), 0.0);

    slo.setObjective("m", "t",
                     SloTracker::Objective()
                         .withLatencyThresholdUs(100));
    EXPECT_TRUE(slo.hasObjective("m", "t"));
    EXPECT_FALSE(slo.hasObjective("m", "other"));
}

// ------------------------------------------------ MetricsSampler

TEST(MetricsSampler, SampleOnceRunsProbesAndDumps)
{
    MetricsRegistry registry;
    registry.counter("sampled_total").inc(1);
    std::string path = "test_metrics_sampler.prom";
    MetricsSampler sampler(
        registry,
        MetricsSampler::Options().withExpositionPath(path));
    std::atomic<int> probes{0};
    sampler.addProbe([&] { probes++; });
    sampler.addProbe([&] { probes++; });

    sampler.sampleOnce();
    EXPECT_EQ(probes.load(), 2);
    EXPECT_EQ(sampler.sweeps(), 1u);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("sampled_total 1"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(MetricsSampler, BackgroundThreadSweeps)
{
    MetricsRegistry registry;
    MetricsSampler sampler(
        registry,
        MetricsSampler::Options().withPeriod(milliseconds(5)));
    std::atomic<int> probes{0};
    sampler.addProbe([&] { probes++; });
    sampler.start();
    sampler.start(); // idempotent
    while (probes.load() < 2)
        std::this_thread::yield();
    sampler.stop();
    sampler.stop(); // idempotent
    int settled = probes.load();
    EXPECT_GE(settled, 2);
    // Probes added after stop only run on explicit sampleOnce.
    sampler.sampleOnce();
    EXPECT_EQ(probes.load(), settled + 1);
}

// -------------------------------------- TraceRecorder drop counter

TEST(TraceRecorder, DropsSurfaceThroughTheRegistry)
{
    MetricsRegistry registry;
    TraceRecorder trace(/*maxSpans=*/2);
    trace.attachMetrics(&registry);
    // Attaching eagerly creates the family at 0.
    Counter& dropped =
        registry.counter("ccsa_trace_spans_dropped_total");
    EXPECT_EQ(dropped.value(), 0u);

    Clock::time_point now = Clock::now();
    for (int i = 0; i < 5; ++i)
        trace.record(trace.nextChain(), TracePhase::Admission, now,
                     now + microseconds(10), 0, "t", 1);
    EXPECT_EQ(trace.spanCount(), 2u);
    EXPECT_EQ(trace.droppedSpans(), 3u);
    EXPECT_EQ(dropped.value(), 3u);

    // clear() frees the buffer; the registry counter stays monotone
    // across the clear and keeps counting new drops.
    trace.clear();
    for (int i = 0; i < 3; ++i)
        trace.record(trace.nextChain(), TracePhase::Queue, now,
                     now + microseconds(10), 0, "t", 1);
    EXPECT_EQ(trace.droppedSpans(), 1u);
    EXPECT_EQ(dropped.value(), 4u);
}

// -------------------------------- EncodingCache resident bytes

TEST(EncodingCache, ResidentBytesTrackInsertEvictAndClear)
{
    EncodingCache cache(2);
    // 4 floats = 16 bytes per latent.
    cache.insert(EncodingKey{1, {1, 1}}, Tensor(1, 4, 1.0f));
    EXPECT_EQ(cache.namespaceStats(1).residentBytes,
              4 * sizeof(float));

    // Overwriting the same key with a larger latent adjusts, not
    // accumulates.
    cache.insert(EncodingKey{1, {1, 1}}, Tensor(1, 8, 1.0f));
    EXPECT_EQ(cache.namespaceStats(1).residents, 1u);
    EXPECT_EQ(cache.namespaceStats(1).residentBytes,
              8 * sizeof(float));

    cache.insert(EncodingKey{2, {2, 2}}, Tensor(1, 4, 2.0f));
    EXPECT_EQ(cache.namespaceStats(2).residentBytes,
              4 * sizeof(float));

    // Capacity 2: the next insert evicts namespace 1's entry (LRU)
    // and its bytes go with it.
    cache.insert(EncodingKey{2, {3, 3}}, Tensor(1, 4, 3.0f));
    EXPECT_EQ(cache.namespaceStats(1).residents, 0u);
    EXPECT_EQ(cache.namespaceStats(1).residentBytes, 0u);
    EXPECT_EQ(cache.namespaceStats(2).residentBytes,
              8 * sizeof(float));

    cache.clear();
    EXPECT_EQ(cache.namespaceStats(2).residentBytes, 0u);
}

// Overwriting a resident key must replace its byte charge, never
// stack a second one — including shrinking overwrites (the underflow
// direction) and same-size re-inserts repeated enough times that any
// drift would show.
TEST(EncodingCache, OverwriteOfResidentKeyNeverDoubleCounts)
{
    EncodingCache cache(4);
    cache.insert(EncodingKey{7, {1, 1}}, Tensor(1, 8, 1.0f));
    EXPECT_EQ(cache.namespaceStats(7).residentBytes,
              8 * sizeof(float));

    // Shrink: bytes go DOWN to the new payload, residents stay 1.
    cache.insert(EncodingKey{7, {1, 1}}, Tensor(1, 2, 2.0f));
    EXPECT_EQ(cache.namespaceStats(7).residents, 1u);
    EXPECT_EQ(cache.namespaceStats(7).residentBytes,
              2 * sizeof(float));

    // Same-size overwrites are a fixed point, not an accumulator.
    for (int i = 0; i < 5; ++i)
        cache.insert(EncodingKey{7, {1, 1}},
                     Tensor(1, 2, static_cast<float>(i)));
    EXPECT_EQ(cache.namespaceStats(7).residents, 1u);
    EXPECT_EQ(cache.namespaceStats(7).residentBytes,
              2 * sizeof(float));
    EXPECT_EQ(cache.size(), 1u);

    // The overwritten value is the latest one.
    Tensor got(1, 1);
    ASSERT_TRUE(cache.lookup(EncodingKey{7, {1, 1}}, &got));
    EXPECT_FLOAT_EQ(got.at(0, 0), 4.0f);
}

// An eviction must charge the VICTIM's namespace, not the inserter's:
// three tenants, capacity two — inserting for tenant 3 evicts tenant
// 1's LRU entry and only tenant 1's bytes move.
TEST(EncodingCache, EvictionDebitsTheVictimNamespace)
{
    EncodingCache cache(2);
    cache.insert(EncodingKey{1, {1, 1}}, Tensor(1, 4, 1.0f));
    cache.insert(EncodingKey{2, {2, 2}}, Tensor(1, 8, 2.0f));

    cache.insert(EncodingKey{3, {3, 3}}, Tensor(1, 6, 3.0f));
    EXPECT_EQ(cache.namespaceStats(1).residents, 0u);
    EXPECT_EQ(cache.namespaceStats(1).residentBytes, 0u);
    EXPECT_EQ(cache.namespaceStats(1).evictions, 1u);
    EXPECT_EQ(cache.namespaceStats(2).residents, 1u);
    EXPECT_EQ(cache.namespaceStats(2).residentBytes,
              8 * sizeof(float));
    EXPECT_EQ(cache.namespaceStats(2).evictions, 0u);
    EXPECT_EQ(cache.namespaceStats(3).residentBytes,
              6 * sizeof(float));
}

// With a reduced-precision store, residentBytes reports bytes AS
// STORED: fp16 = 2 bytes/element, int8 = 1 byte/element + 4 bytes of
// per-row scale. The overwrite invariant holds there too.
TEST(EncodingCache, QuantizedResidentBytesReflectStoredSize)
{
    EncodingCache fp16(4, LatentPrecision::kFp16);
    fp16.insert(EncodingKey{1, {1, 1}}, Tensor(1, 8, 1.0f));
    EXPECT_EQ(fp16.namespaceStats(1).residentBytes, 8u * 2u);

    EncodingCache int8(4, LatentPrecision::kInt8);
    int8.insert(EncodingKey{1, {1, 1}}, Tensor(1, 8, 1.0f));
    EXPECT_EQ(int8.namespaceStats(1).residentBytes,
              8u * 1u + 1u * sizeof(float));
    int8.insert(EncodingKey{1, {1, 1}}, Tensor(2, 8, 1.0f));
    EXPECT_EQ(int8.namespaceStats(1).residents, 1u);
    EXPECT_EQ(int8.namespaceStats(1).residentBytes,
              2u * 8u * 1u + 2u * sizeof(float));
}

// --------------------------------------- serving-spine integration

TEST(ServingMetrics, AsyncServerFeedsTheRegistry)
{
    MetricsRegistry registry;
    SloTracker slo(registry);
    slo.setObjective("model", "",
                     SloTracker::Objective()
                         .withLatencyThresholdUs(1)); // all bad
    Engine engine(tinyOptions().withMetrics(&registry));
    AsyncServer server(engine,
                       AsyncServer::Options()
                           .withMaxBatchDelay(microseconds(50))
                           .withMetrics(&registry)
                           .withSlo(&slo));
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(2);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(server.submitCompare(a, b).get().isOk());
    server.shutdown();
    server.sampleMetrics();

    MetricLabels sub{{"server", "async"}, {"outcome", "submitted"}};
    MetricLabels done{{"server", "async"}, {"outcome", "completed"}};
    EXPECT_EQ(registry.counter("ccsa_requests_total", sub).value(),
              4u);
    EXPECT_EQ(registry.counter("ccsa_requests_total", done).value(),
              4u);
    EXPECT_GE(registry
                  .counter("ccsa_batches_total",
                           {{"server", "async"}})
                  .value(),
              1u);

    // Latency histogram: one sample per request, labeled with the
    // classic-mode model name and default tenant.
    WindowedHistogram& lat = registry.windowedHistogram(
        "ccsa_request_latency_us",
        {{"server", "async"},
         {"model", "model"},
         {"tenant", ""},
         {"priority", "interactive"}});
    EXPECT_EQ(lat.lifetime().count(), 4u);

    // Engine phase histograms saw every batch.
    WindowedHistogram& encode = registry.windowedHistogram(
        "ccsa_engine_phase_us", {{"phase", "encode"}});
    EXPECT_GE(encode.lifetime().count(), 1u);

    // SLO: a 1 us threshold makes every request bad.
    EXPECT_EQ(registry.counter("ccsa_slo_bad_total",
                               {{"model", "model"}, {"tenant", ""}})
                  .value(),
              4u);

    // Gauges published by sampleMetrics.
    EXPECT_GT(registry
                  .gauge("ccsa_cache_residents",
                         {{"server", "async"}, {"model", "model"}})
                  .value(),
              0.0);
    EXPECT_EQ(registry
                  .gauge("ccsa_queue_depth", {{"server", "async"}})
                  .value(),
              0.0);
}

TEST(ServingMetrics, ShardedServerFeedsTheRegistry)
{
    MetricsRegistry registry;
    ShardedServer server(tinyOptions(),
                         ShardedServer::Options()
                             .withNumShards(2)
                             .withMaxBatchDelay(microseconds(50))
                             .withMetrics(&registry));
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(3);
    std::vector<Engine::PairRequest> pairs{{&a, &b}, {&b, &a}};
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(
            server.submitCompareMany(pairs).get().isOk());
    server.shutdown();
    server.sampleMetrics();

    MetricLabels sub{{"server", "sharded"},
                     {"outcome", "submitted"}};
    MetricLabels done{{"server", "sharded"},
                      {"outcome", "completed"}};
    EXPECT_EQ(registry.counter("ccsa_requests_total", sub).value(),
              3u);
    EXPECT_EQ(registry.counter("ccsa_requests_total", done).value(),
              3u);
    // Slice-level latency samples: at least one per request.
    WindowedHistogram& lat = registry.windowedHistogram(
        "ccsa_request_latency_us",
        {{"server", "sharded"},
         {"model", "model"},
         {"tenant", ""},
         {"priority", "interactive"}});
    EXPECT_GE(lat.lifetime().count(), 3u);
    EXPECT_EQ(registry
                  .gauge("ccsa_queue_capacity",
                         {{"server", "sharded"}})
                  .value(),
              1024.0);
}

TEST(ServingMetrics, QuotaRejectionsCount)
{
    MetricsRegistry registry;
    AdmissionController admission;
    admission.setQuota("t",
                       AdmissionController::Quota{/*pairsPerSec=*/
                                                  0.000001,
                                                  /*burst=*/1.0});
    Engine engine(tinyOptions());
    AsyncServer server(engine,
                       AsyncServer::Options()
                           .withAdmission(&admission)
                           .withMetrics(&registry));
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(2);
    SubmitOptions opts = SubmitOptions().withTenant("t");
    ASSERT_TRUE(server.submitCompare(opts, a, b).get().isOk());
    EXPECT_FALSE(server.submitCompare(opts, a, b).get().isOk());
    server.shutdown();

    MetricLabels quota{{"server", "async"},
                       {"outcome", "rejected_quota"}};
    EXPECT_EQ(registry.counter("ccsa_requests_total", quota).value(),
              1u);

    admission.publishMetrics(registry);
    EXPECT_EQ(registry
                  .counter("ccsa_admission_rejected_total",
                           {{"tenant", "t"}})
                  .value(),
              1u);
    EXPECT_EQ(registry
                  .counter("ccsa_admission_admitted_total",
                           {{"tenant", "t"}})
                  .value(),
              1u);
}

} // namespace ccsa
