/**
 * @file
 * Tests for the encoders, the comparative predictor, the trainer
 * (including the overfit sanity check), and model persistence.
 */

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "dataset/pairs.hh"
#include "frontend/parser.hh"
#include "model/trainer.hh"
#include "oracle.hh"

namespace ccsa
{
namespace
{

Ast
tinyProgram(int loops)
{
    std::string src = "int main() {\n int n;\n cin >> n;\n";
    for (int i = 0; i < loops; ++i) {
        std::string v = "i" + std::to_string(i);
        src += " for (int " + v + " = 0; " + v + " < n; " + v +
            "++) { int z" + std::to_string(i) + " = " + v + "; }\n";
    }
    src += " return 0;\n}\n";
    return parseAndPrune(src);
}

class EncoderKindTest : public ::testing::TestWithParam<EncoderKind>
{
};

TEST_P(EncoderKindTest, EncodesToConfiguredDimension)
{
    EncoderConfig cfg;
    cfg.kind = GetParam();
    cfg.embedDim = 8;
    cfg.hiddenDim = 12;
    cfg.layers = 2;
    Rng rng(1);
    auto encoder = makeEncoder(cfg, rng);
    Ast ast = tinyProgram(2);
    ag::Var z = encoder->encode(ast);
    EXPECT_EQ(z.value().rows(), 1);
    EXPECT_EQ(z.value().cols(), encoder->outputDim());
    EXPECT_GT(encoder->parameterCount(), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEncoders, EncoderKindTest,
    ::testing::Values(EncoderKind::TreeLstm, EncoderKind::Gcn,
                      EncoderKind::TokenLstm));

TEST(Encoder, BiArchDoublesOutputDim)
{
    EncoderConfig cfg;
    cfg.hiddenDim = 10;
    cfg.arch = nn::TreeArch::Bi;
    Rng rng(2);
    auto encoder = makeEncoder(cfg, rng);
    EXPECT_EQ(encoder->outputDim(), 20);
}

TEST(Encoder, DistinguishesStructures)
{
    EncoderConfig cfg;
    cfg.embedDim = 8;
    cfg.hiddenDim = 8;
    Rng rng(3);
    auto encoder = makeEncoder(cfg, rng);
    Tensor z1 = encoder->encode(tinyProgram(1)).value();
    Tensor z3 = encoder->encode(tinyProgram(3)).value();
    EXPECT_GT(z1.maxAbsDiff(z3), 1e-6f);
}

TEST(Predictor, ProbabilitiesAreValid)
{
    EncoderConfig cfg;
    cfg.embedDim = 8;
    cfg.hiddenDim = 8;
    ComparativePredictor model(cfg, 7);
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(3);
    double p = perPairProb(model, a, b);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    // Swapping the pair is distinct evidence, not 1 - p (the
    // classifier is not antisymmetric), but still a probability.
    double q = perPairProb(model, b, a);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
}

TEST(Predictor, SaveLoadRoundTrip)
{
    EncoderConfig cfg;
    cfg.embedDim = 8;
    cfg.hiddenDim = 8;
    ComparativePredictor model(cfg, 11);
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(2);
    double before = perPairProb(model, a, b);

    std::string path =
        (std::filesystem::temp_directory_path() /
         "ccsa_model_roundtrip.bin").string();
    ASSERT_TRUE(model.save(path).isOk());

    ComparativePredictor other(cfg, 999); // different init
    EXPECT_NE(perPairProb(other, a, b), before);
    ASSERT_TRUE(other.load(path).isOk());
    EXPECT_NEAR(perPairProb(other, a, b), before, 1e-6);
    std::remove(path.c_str());
}

TEST(Predictor, SaveToUnopenablePathReportsStatus)
{
    EncoderConfig cfg;
    cfg.embedDim = 4;
    cfg.hiddenDim = 4;
    ComparativePredictor model(cfg, 1);
    Status s = model.save("/nonexistent-ccsa-dir/model.bin");
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::IoError);
    EXPECT_NE(s.message().find("cannot open"), std::string::npos);
}

TEST(Predictor, FailedLoadLeavesWeightsUntouched)
{
    EncoderConfig small;
    small.embedDim = 4;
    small.hiddenDim = 4;
    ComparativePredictor donor(small, 1);
    std::string path =
        (std::filesystem::temp_directory_path() /
         "ccsa_model_mismatch.bin").string();
    ASSERT_TRUE(donor.save(path).isOk());

    EncoderConfig bigger = small;
    bigger.hiddenDim = 8; // shape mismatch against the file
    ComparativePredictor model(bigger, 2);
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(2);
    double before = perPairProb(model, a, b);

    Status s = model.load(path);
    EXPECT_FALSE(s.isOk());
    // Load is transactional: a bad file must not half-overwrite.
    EXPECT_EQ(perPairProb(model, a, b), before);
    std::remove(path.c_str());
}

TEST(Predictor, LoadFromMissingPathReportsStatus)
{
    EncoderConfig cfg;
    cfg.embedDim = 4;
    cfg.hiddenDim = 4;
    ComparativePredictor model(cfg, 1);
    Status s = model.load("/nonexistent-ccsa-dir/model.bin");
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::IoError);
}

TEST(Trainer, RejectsEmptyPairs)
{
    EncoderConfig cfg;
    cfg.embedDim = 4;
    cfg.hiddenDim = 4;
    ComparativePredictor model(cfg, 1);
    TrainConfig tc;
    Trainer trainer(model, tc);
    std::vector<Submission> subs;
    EXPECT_THROW(trainer.fit(subs, {}), FatalError);
}

TEST(Trainer, OverfitsTinySeparableDataset)
{
    // Six structurally distinct programs whose runtime grows with
    // their loop count: every pair is decidable from structure, so
    // the model must reach near-perfect training accuracy.
    std::vector<Submission> subs;
    for (int i = 0; i < 6; ++i) {
        Submission s;
        s.id = i;
        s.problemId = 0;
        s.ast = tinyProgram(i + 1);
        s.runtimeMs = 50.0 * (i + 1);
        subs.push_back(std::move(s));
    }
    std::vector<int> idx{0, 1, 2, 3, 4, 5};
    Rng rng(13);
    PairOptions popt;
    auto pairs = buildPairs(subs, idx, popt, rng);

    EncoderConfig cfg;
    cfg.embedDim = 8;
    cfg.hiddenDim = 12;
    ComparativePredictor model(cfg, 3);
    TrainConfig tc;
    tc.epochs = 40;
    tc.learningRate = 1.5e-2f;
    tc.batchPairs = 8;
    Trainer trainer(model, tc);
    TrainStats stats = trainer.fit(subs, pairs);

    EXPECT_GT(stats.finalAccuracy(), 0.95);
    EXPECT_LT(stats.finalLoss(), stats.epochLoss.front());
}

TEST(TrainStats, EmptyDefaults)
{
    TrainStats stats;
    EXPECT_DOUBLE_EQ(stats.finalLoss(), 0.0);
    EXPECT_DOUBLE_EQ(stats.finalAccuracy(), 0.0);
}

TEST(EncoderKindName, AllNamed)
{
    EXPECT_STREQ(encoderKindName(EncoderKind::TreeLstm), "tree-LSTM");
    EXPECT_STREQ(encoderKindName(EncoderKind::Gcn), "GCN");
    EXPECT_STREQ(encoderKindName(EncoderKind::TokenLstm),
                 "token-LSTM");
}

} // namespace
} // namespace ccsa
