/**
 * @file
 * The ISSUE-5 harness for multi-model serving: self-describing v2
 * checkpoints (manifest roundtrip, v1 backward compatibility),
 * ModelRegistry publish/resolve/hot-swap semantics, registry-backed
 * Engine and ShardedServer bitwise parity with dedicated
 * single-model engines per model at 1/2/4/8 shards, the
 * admitted-before-swap contract (a request pins the ModelVersion it
 * resolved at admission), and a multi-producer hot-swap stress test
 * (runs under TSan in CI) asserting every response matches exactly
 * one of the competing versions' bitwise outputs.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "base/rng.hh"
#include "frontend/parser.hh"
#include "serve/async_server.hh"
#include "serve/model_registry.hh"
#include "serve/sharded_server.hh"

namespace ccsa
{
namespace
{

using std::chrono::microseconds;

Ast
tinyProgram(int loops)
{
    std::string src = "int main() {\n int n;\n cin >> n;\n";
    for (int i = 0; i < loops; ++i) {
        std::string v = "i" + std::to_string(i);
        src += " for (int " + v + " = 0; " + v + " < n; " + v +
            "++) { int z" + std::to_string(i) + " = " + v + "; }\n";
    }
    src += " return 0;\n}\n";
    return parseAndPrune(src);
}

EncoderConfig
tinyConfig()
{
    EncoderConfig cfg;
    cfg.embedDim = 8;
    cfg.hiddenDim = 8;
    return cfg;
}

Engine::Options
tinyOptions()
{
    return Engine::Options()
        .withEncoder(tinyConfig())
        .withSeed(7)
        .withThreads(1);
}

std::string
tempPath(const std::string& name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

// ------------------------------------------- checkpoint manifests

TEST(CheckpointManifest, SaveEmbedsAndReadBackRoundTrips)
{
    EncoderConfig cfg = tinyConfig();
    cfg.kind = EncoderKind::Gcn;
    cfg.layers = 2;
    ComparativePredictor model(cfg, 11);
    std::string path = tempPath("ccsa_manifest_roundtrip.bin");
    ASSERT_TRUE(model.save(path, "family-g", 42).isOk());

    auto manifest = nn::readCheckpointManifest(path);
    ASSERT_TRUE(manifest.has_value());
    EXPECT_EQ(manifest->modelName, "family-g");
    EXPECT_EQ(manifest->version, 42u);
    EXPECT_EQ(ComparativePredictor::configFromManifest(*manifest),
              cfg);
    std::remove(path.c_str());
}

TEST(CheckpointManifest, FromCheckpointRebuildsTheModel)
{
    ComparativePredictor donor(tinyConfig(), 11);
    std::string path = tempPath("ccsa_manifest_clone.bin");
    ASSERT_TRUE(donor.save(path, "clone-me", 3).isOk());

    auto clone = ComparativePredictor::fromCheckpoint(path);
    ASSERT_TRUE(clone.isOk());
    EXPECT_EQ(clone.value()->config(), donor.config());

    // Identical weights => identical serving outputs bitwise.
    Ast a = tinyProgram(1), b = tinyProgram(3);
    Engine original(
        std::shared_ptr<ComparativePredictor>(
            &donor, [](ComparativePredictor*) {}),
        tinyOptions());
    Engine restored(clone.value(), tinyOptions());
    EXPECT_EQ(restored.compare(a, b).value(),
              original.compare(a, b).value());
    std::remove(path.c_str());
}

TEST(CheckpointManifest, V1FilesStillLoadButAreNotSelfDescribing)
{
    ComparativePredictor donor(tinyConfig(), 11);
    std::string path = tempPath("ccsa_v1_compat.bin");
    nn::saveParametersV1(path, donor.parameters());

    // No manifest...
    EXPECT_FALSE(nn::readCheckpointManifest(path).has_value());
    // ...so self-describing reconstruction must refuse...
    auto rebuilt = ComparativePredictor::fromCheckpoint(path);
    ASSERT_FALSE(rebuilt.isOk());
    EXPECT_EQ(rebuilt.status().code(), StatusCode::InvalidArgument);
    // ...but a caller who knows the config still loads the weights.
    ComparativePredictor other(tinyConfig(), 999);
    ASSERT_TRUE(other.load(path).isOk());
    Ast a = tinyProgram(1), b = tinyProgram(2);
    Engine lhs(std::shared_ptr<ComparativePredictor>(
                   &donor, [](ComparativePredictor*) {}),
               tinyOptions());
    Engine rhs(std::shared_ptr<ComparativePredictor>(
                   &other, [](ComparativePredictor*) {}),
               tinyOptions());
    EXPECT_EQ(rhs.compare(a, b).value(), lhs.compare(a, b).value());
    std::remove(path.c_str());
}

TEST(CheckpointManifest, CorruptManifestComesBackAsStatusNotAThrow)
{
    // A manifest whose encoder words are out of range (corruption,
    // or a future format) must fail the Status contract cleanly —
    // fromCheckpoint constructing a model from it used to escape as
    // a thrown enum/dimension error.
    ComparativePredictor donor(tinyConfig(), 1);
    std::string path = tempPath("ccsa_manifest_corrupt.bin");
    nn::CheckpointManifest bad =
        ComparativePredictor::manifestFor(tinyConfig(), "evil", 1);
    bad.encoderKind = 99;
    nn::saveParameters(path, donor.parameters(), bad);

    auto rebuilt = ComparativePredictor::fromCheckpoint(path);
    ASSERT_FALSE(rebuilt.isOk());
    EXPECT_EQ(rebuilt.status().code(), StatusCode::IoError);
    ModelRegistry registry;
    EXPECT_FALSE(registry.load(path).isOk()); // same contract
    std::remove(path.c_str());
}

TEST(CheckpointManifest, ConfigMismatchIsRefusedBeforeWeightsLoad)
{
    ComparativePredictor donor(tinyConfig(), 1);
    std::string path = tempPath("ccsa_manifest_mismatch.bin");
    ASSERT_TRUE(donor.save(path).isOk());

    EncoderConfig bigger = tinyConfig();
    bigger.hiddenDim = 12;
    ComparativePredictor model(bigger, 2);
    Status s = model.load(path);
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::IoError);
    std::remove(path.c_str());
}

// ------------------------------------------------- ModelRegistry

TEST(ModelRegistry, PublishResolveAndHotSwapSemantics)
{
    ModelRegistry registry;
    EXPECT_EQ(registry.resolve(""), nullptr);
    EXPECT_EQ(registry.size(), 0u);

    auto m1 = std::make_shared<ComparativePredictor>(tinyConfig(), 1);
    auto m2 = std::make_shared<ComparativePredictor>(tinyConfig(), 2);
    auto v1 = registry.publish("alpha", m1);
    EXPECT_EQ(v1->name, "alpha");
    EXPECT_EQ(v1->sequence, 1u);
    EXPECT_NE(v1->id, 0u);
    EXPECT_EQ(registry.defaultName(), "alpha"); // first registered

    // Hot swap: sequence bumps, namespace id is FRESH, the old
    // snapshot keeps working for whoever still holds it (RCU).
    auto v2 = registry.publish("alpha", m2);
    EXPECT_EQ(v2->sequence, 2u);
    EXPECT_GT(v2->id, v1->id); // monotonically increasing
    EXPECT_EQ(registry.resolve("alpha"), v2);
    EXPECT_EQ(v1->model.get(), m1.get()); // snapshot untouched

    registry.publish("beta", m1);
    EXPECT_EQ(registry.names(),
              (std::vector<std::string>{"alpha", "beta"}));
    EXPECT_EQ(registry.resolve(""), registry.resolve("alpha"));
    ASSERT_TRUE(registry.setDefault("beta").isOk());
    EXPECT_EQ(registry.resolve(""), registry.resolve("beta"));
    EXPECT_FALSE(registry.setDefault("nope").isOk());

    EXPECT_TRUE(registry.remove("beta"));
    EXPECT_FALSE(registry.remove("beta"));
    EXPECT_EQ(registry.defaultName(), "alpha"); // falls back
    EXPECT_TRUE(registry.contains("alpha"));
    EXPECT_FALSE(registry.contains("beta"));
}

TEST(ModelRegistry, SaveAndLoadRoundTripThroughManifests)
{
    ModelRegistry registry;
    auto model = std::make_shared<ComparativePredictor>(tinyConfig(), 5);
    registry.publish("family-x", model);
    registry.publish("family-x",
                     std::make_shared<ComparativePredictor>(
                         tinyConfig(), 6)); // sequence 2

    std::string path = tempPath("ccsa_registry_roundtrip.bin");
    ASSERT_TRUE(registry.save("family-x", path).isOk());
    auto manifest = nn::readCheckpointManifest(path);
    ASSERT_TRUE(manifest.has_value());
    EXPECT_EQ(manifest->modelName, "family-x");
    EXPECT_EQ(manifest->version, 2u); // the publish sequence

    // A second registry deploys it with ZERO out-of-band config —
    // the name comes from the manifest, and the publish sequence
    // continues from the checkpoint's version instead of resetting
    // to 1 across the "restart".
    ModelRegistry other;
    auto loaded = other.load(path);
    ASSERT_TRUE(loaded.isOk());
    EXPECT_EQ(loaded.value()->name, "family-x");
    EXPECT_EQ(loaded.value()->sequence, 2u);
    EXPECT_EQ(other
                  .publish("family-x",
                           std::make_shared<ComparativePredictor>(
                               tinyConfig(), 7))
                  ->sequence,
              3u);

    Ast a = tinyProgram(2), b = tinyProgram(4);
    Engine lhs(registry.resolve("family-x")->model, tinyOptions());
    Engine rhs(loaded.value()->model, tinyOptions());
    EXPECT_EQ(rhs.compare(a, b).value(), lhs.compare(a, b).value());

    // Unknown names are errors, not crashes.
    EXPECT_FALSE(registry.save("nope", path).isOk());
    std::remove(path.c_str());
}

TEST(ModelRegistry, LoadsV1CheckpointsWithExplicitConfig)
{
    ComparativePredictor donor(tinyConfig(), 11);
    std::string path = tempPath("ccsa_registry_v1.bin");
    nn::saveParametersV1(path, donor.parameters());

    ModelRegistry registry;
    // Self-describing path refuses a v1 file...
    auto bare = registry.load(path);
    ASSERT_FALSE(bare.isOk());
    EXPECT_EQ(bare.status().code(), StatusCode::InvalidArgument);
    // ...the explicit-config overload deploys it.
    auto loaded = registry.load("legacy", path, tinyConfig());
    ASSERT_TRUE(loaded.isOk());
    EXPECT_EQ(loaded.value()->name, "legacy");
    EXPECT_EQ(registry.resolve("legacy"), loaded.value());
    std::remove(path.c_str());
}

// ------------------------------------------ registry-backed Engine

TEST(Engine, RegistryModeMatchesDedicatedEnginesPerModelBitwise)
{
    auto modelA = std::make_shared<ComparativePredictor>(tinyConfig(), 7);
    auto modelB = std::make_shared<ComparativePredictor>(tinyConfig(), 8);
    auto registry = std::make_shared<ModelRegistry>();
    registry->publish("a", modelA);
    registry->publish("b", modelB);

    Engine dedicatedA(modelA, tinyOptions());
    Engine dedicatedB(modelB, tinyOptions());
    Engine multi(registry, tinyOptions());

    std::vector<Ast> trees;
    for (int i = 1; i <= 5; ++i)
        trees.push_back(tinyProgram(i));
    std::vector<Engine::PairRequest> pairs;
    for (std::size_t i = 0; i < trees.size(); ++i)
        for (std::size_t j = 0; j < trees.size(); ++j)
            if (i != j)
                pairs.push_back({&trees[i], &trees[j]});

    auto viaA = multi.compareMany("a", pairs);
    auto viaB = multi.compareMany("b", pairs);
    auto viaDefault = multi.compareMany(pairs); // default = "a"
    ASSERT_TRUE(viaA.isOk());
    ASSERT_TRUE(viaB.isOk());
    ASSERT_TRUE(viaDefault.isOk());
    auto refA = dedicatedA.compareMany(pairs).value();
    auto refB = dedicatedB.compareMany(pairs).value();
    for (std::size_t k = 0; k < pairs.size(); ++k) {
        EXPECT_EQ(viaA.value()[k], refA[k]) << "pair " << k;
        EXPECT_EQ(viaB.value()[k], refB[k]) << "pair " << k;
        EXPECT_EQ(viaDefault.value()[k], refA[k]) << "pair " << k;
    }

    // rank() rides the same resolution.
    std::vector<const Ast*> field{&trees[0], &trees[2], &trees[4]};
    auto rankedB = multi.rank("b", field);
    auto refRankB = dedicatedB.rank(field);
    ASSERT_TRUE(rankedB.isOk());
    for (std::size_t i = 0; i < refRankB.value().size(); ++i) {
        EXPECT_EQ(rankedB.value()[i].index,
                  refRankB.value()[i].index);
        EXPECT_EQ(rankedB.value()[i].meanProbFaster,
                  refRankB.value()[i].meanProbFaster);
    }

    // Both models' latents live in ONE cache, isolated namespaces.
    auto rows = multi.perModelCacheStats();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].name, "a");
    EXPECT_EQ(rows[1].name, "b");
    EXPECT_NE(rows[0].versionId, rows[1].versionId);
    EXPECT_EQ(rows[0].cache.residents, trees.size());
    EXPECT_EQ(rows[1].cache.residents, trees.size());

    // Unknown names and registry-mode save/load fail cleanly.
    EXPECT_EQ(multi.compareMany("nope", pairs).status().code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(multi.save("x.bin").code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(multi.load("x.bin").code(),
              StatusCode::InvalidArgument);
}

TEST(Engine, HotSwapKeepsInFlightSnapshotsStable)
{
    auto modelA = std::make_shared<ComparativePredictor>(tinyConfig(), 7);
    auto modelB = std::make_shared<ComparativePredictor>(tinyConfig(), 8);
    auto registry = std::make_shared<ModelRegistry>();
    registry->publish("m", modelA);
    Engine multi(registry, tinyOptions());
    Engine dedicatedA(modelA, tinyOptions());
    Engine dedicatedB(modelB, tinyOptions());

    Ast a = tinyProgram(2), b = tinyProgram(5);

    // A batch that resolved BEFORE the swap serves the old weights…
    auto snapshot = multi.resolveModel("m");
    ASSERT_TRUE(snapshot.isOk());
    registry->publish("m", modelB); // hot swap
    auto onOld = multi.compareMany(
        *snapshot.value(), {Engine::PairRequest{&a, &b}});
    ASSERT_TRUE(onOld.isOk());
    EXPECT_EQ(onOld.value()[0], dedicatedA.compare(a, b).value());

    // …while post-swap resolution serves the new ones.
    EXPECT_EQ(multi.compare(a, b).value(),
              dedicatedB.compare(a, b).value());
}

TEST(Engine, RegistryModeWithEmptyRegistryFailsRequestsNotProcess)
{
    auto registry = std::make_shared<ModelRegistry>();
    Engine multi(registry, tinyOptions());
    Ast a = tinyProgram(1), b = tinyProgram(2);
    auto r = multi.compare(a, b);
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
    EXPECT_THROW(multi.model(), FatalError);

    // Models can arrive after the engine exists (deploy-time wiring).
    registry->publish("late",
                      std::make_shared<ComparativePredictor>(
                          tinyConfig(), 3));
    EXPECT_TRUE(multi.compare(a, b).isOk());
}

// ------------------------------------- multi-model async serving

TEST(AsyncServer, ServesNamedModelsAndIsolatesUnknownNames)
{
    auto modelA = std::make_shared<ComparativePredictor>(tinyConfig(), 7);
    auto modelB = std::make_shared<ComparativePredictor>(tinyConfig(), 8);
    auto registry = std::make_shared<ModelRegistry>();
    registry->publish("a", modelA);
    registry->publish("b", modelB);

    Engine dedicatedA(modelA, tinyOptions());
    Engine dedicatedB(modelB, tinyOptions());
    AsyncServer server(registry);

    Ast x = tinyProgram(2), y = tinyProgram(4);
    auto fa = server.submitCompare("a", x, y);
    auto fb = server.submitCompare("b", x, y);
    auto fdef = server.submitCompare(x, y);
    auto fbad = server.submitCompare("nope", x, y);

    EXPECT_EQ(fa.get().value(), dedicatedA.compare(x, y).value());
    EXPECT_EQ(fb.get().value(), dedicatedB.compare(x, y).value());
    EXPECT_EQ(fdef.get().value(),
              dedicatedA.compare(x, y).value()); // default = "a"
    auto bad = fbad.get();
    ASSERT_FALSE(bad.isOk());
    EXPECT_EQ(bad.status().code(), StatusCode::InvalidArgument);

    server.shutdown();
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.requestsFailed, 1u);
    EXPECT_EQ(stats.requestsCompleted, 3u);
    ASSERT_EQ(stats.models.size(), 2u);
    EXPECT_EQ(stats.models[0].name, "a");
    EXPECT_EQ(stats.models[1].name, "b");
}

TEST(AsyncServer, MixedModelBatchExecutesPerVersionGroups)
{
    auto modelA = std::make_shared<ComparativePredictor>(tinyConfig(), 7);
    auto modelB = std::make_shared<ComparativePredictor>(tinyConfig(), 8);
    auto registry = std::make_shared<ModelRegistry>();
    registry->publish("a", modelA);
    registry->publish("b", modelB);
    Engine dedicatedA(modelA, tinyOptions());
    Engine dedicatedB(modelB, tinyOptions());

    // startPaused: all six requests land in ONE coalesced batch, so
    // the batcher must split it per version and fan back correctly.
    AsyncServer server(registry, AsyncServer::Options()
                                     .withStartPaused(true)
                                     .withMaxBatchSize(64));
    std::vector<Ast> trees;
    for (int i = 1; i <= 4; ++i)
        trees.push_back(tinyProgram(i));
    std::vector<std::future<Result<double>>> futures;
    std::vector<double> expected;
    for (int k = 0; k < 6; ++k) {
        const Ast& x = trees[static_cast<std::size_t>(k % 3)];
        const Ast& y = trees[static_cast<std::size_t>(k % 3) + 1];
        const char* name = k % 2 == 0 ? "a" : "b";
        futures.push_back(server.submitCompare(name, x, y));
        expected.push_back(
            (k % 2 == 0 ? dedicatedA : dedicatedB)
                .compare(x, y)
                .value());
    }
    server.shutdown(); // drains the staged batch
    for (std::size_t k = 0; k < futures.size(); ++k) {
        Result<double> got = futures[k].get();
        ASSERT_TRUE(got.isOk()) << "request " << k;
        EXPECT_EQ(got.value(), expected[k]) << "request " << k;
    }
}

// ----------------------------------- multi-model sharded serving

TEST(ShardedServer, RegistryModeMatchesDedicatedEnginesAtAnyShardCount)
{
    auto modelA = std::make_shared<ComparativePredictor>(tinyConfig(), 7);
    auto modelB = std::make_shared<ComparativePredictor>(tinyConfig(), 8);
    auto registry = std::make_shared<ModelRegistry>();
    registry->publish("a", modelA);
    registry->publish("b", modelB);

    Engine dedicatedA(modelA, tinyOptions());
    Engine dedicatedB(modelB, tinyOptions());

    std::vector<Ast> trees;
    for (int i = 1; i <= 6; ++i)
        trees.push_back(tinyProgram(i));
    std::vector<Engine::PairRequest> pairs;
    for (std::size_t i = 0; i < trees.size(); ++i)
        for (std::size_t j = 0; j < trees.size(); ++j)
            if (i != j)
                pairs.push_back({&trees[i], &trees[j]});
    auto refA = dedicatedA.compareMany(pairs).value();
    auto refB = dedicatedB.compareMany(pairs).value();

    for (std::size_t shards : {1u, 2u, 4u, 8u}) {
        ShardedServer server(
            registry, tinyOptions(),
            ShardedServer::Options().withNumShards(shards));
        auto gotA = server.submitCompareMany("a", pairs).get();
        auto gotB = server.submitCompareMany("b", pairs).get();
        ASSERT_TRUE(gotA.isOk()) << "shards=" << shards;
        ASSERT_TRUE(gotB.isOk()) << "shards=" << shards;
        for (std::size_t k = 0; k < pairs.size(); ++k) {
            EXPECT_EQ(gotA.value()[k], refA[k])
                << "shards=" << shards << " pair " << k;
            EXPECT_EQ(gotB.value()[k], refB[k])
                << "shards=" << shards << " pair " << k;
        }
        // Per-model namespaces partition the shared cache.
        ShardedServerStats stats = server.stats();
        ASSERT_EQ(stats.aggregate.models.size(), 2u);
        EXPECT_EQ(stats.aggregate.models[0].cache.residents,
                  trees.size());
        EXPECT_EQ(stats.aggregate.models[1].cache.residents,
                  trees.size());
        EXPECT_EQ(server.cache().size(), 2 * trees.size());
    }
}

TEST(ShardedServer, RequestsAdmittedBeforeSwapCompleteOnOldVersion)
{
    auto modelA = std::make_shared<ComparativePredictor>(tinyConfig(), 7);
    auto modelB = std::make_shared<ComparativePredictor>(tinyConfig(), 8);
    auto registry = std::make_shared<ModelRegistry>();
    registry->publish("m", modelA);
    Engine dedicatedA(modelA, tinyOptions());
    Engine dedicatedB(modelB, tinyOptions());

    Ast a = tinyProgram(2), b = tinyProgram(5);
    std::vector<Ast> trees;
    for (int i = 1; i <= 5; ++i)
        trees.push_back(tinyProgram(i));
    std::vector<Engine::PairRequest> manyPairs;
    for (std::size_t i = 0; i + 1 < trees.size(); ++i)
        manyPairs.push_back({&trees[i], &trees[i + 1]});

    // Paused server: admissions pin their version while NOTHING has
    // executed yet; the swap lands in between; shutdown() drains.
    ShardedServer server(registry, tinyOptions(),
                         ShardedServer::Options()
                             .withNumShards(4)
                             .withStartPaused(true)
                             .withQueueCapacity(256));
    std::vector<std::future<Result<double>>> beforeSwap;
    for (int k = 0; k < 8; ++k)
        beforeSwap.push_back(server.submitCompare("m", a, b));
    auto beforeSplit = server.submitCompareMany("m", manyPairs);

    registry->publish("m", modelB); // the hot swap

    std::vector<std::future<Result<double>>> afterSwap;
    for (int k = 0; k < 8; ++k)
        afterSwap.push_back(server.submitCompare("m", a, b));

    server.shutdown();

    double expectA = dedicatedA.compare(a, b).value();
    double expectB = dedicatedB.compare(a, b).value();
    ASSERT_NE(expectA, expectB);
    for (auto& f : beforeSwap)
        EXPECT_EQ(f.get().value(), expectA);
    for (auto& f : afterSwap)
        EXPECT_EQ(f.get().value(), expectB);
    // A request split across shards is still ONE snapshot.
    auto refSplit = dedicatedA.compareMany(manyPairs).value();
    auto gotSplit = beforeSplit.get();
    ASSERT_TRUE(gotSplit.isOk());
    for (std::size_t k = 0; k < refSplit.size(); ++k)
        EXPECT_EQ(gotSplit.value()[k], refSplit[k]);
}

TEST(ShardedServer, HotSwapStressEveryResponseMatchesOneVersion)
{
    // N producers hammer one name while a writer hot-swaps between
    // two weight sets every few hundred microseconds. Every response
    // must equal EXACTLY one of the two versions' bitwise outputs —
    // a torn batch (half-old, half-new latents) or a cross-namespace
    // cache read would produce a third value. Runs under TSan in CI.
    constexpr int kClients = 4;
    constexpr int kRequestsPerClient = 60;
    constexpr int kTrees = 6;
    constexpr int kSwaps = 25;

    std::vector<Ast> trees;
    for (int i = 1; i <= kTrees; ++i)
        trees.push_back(tinyProgram(i));

    auto modelA = std::make_shared<ComparativePredictor>(tinyConfig(), 7);
    auto modelB = std::make_shared<ComparativePredictor>(tinyConfig(), 8);

    // Expected response matrices, one per weight set.
    std::vector<Engine::PairRequest> allPairs;
    for (int i = 0; i < kTrees; ++i)
        for (int j = 0; j < kTrees; ++j)
            if (i != j)
                allPairs.push_back({&trees[i], &trees[j]});
    Engine dedicatedA(modelA, tinyOptions());
    Engine dedicatedB(modelB, tinyOptions());
    std::vector<double> refA = dedicatedA.compareMany(allPairs).value();
    std::vector<double> refB = dedicatedB.compareMany(allPairs).value();
    auto pairSlot = [&](int i, int j) {
        return static_cast<std::size_t>(i * (kTrees - 1) +
                                        (j < i ? j : j - 1));
    };

    // Deterministic per-client schedules, materialised up front.
    struct WorkItem
    {
        int first;
        int second;
    };
    std::vector<std::vector<WorkItem>> schedule(kClients);
    for (int c = 0; c < kClients; ++c) {
        Rng rng(5000 + static_cast<std::uint64_t>(c));
        for (int k = 0; k < kRequestsPerClient; ++k) {
            int i = rng.uniformInt(0, kTrees - 1);
            int j = rng.uniformInt(0, kTrees - 2);
            if (j >= i)
                ++j;
            schedule[static_cast<std::size_t>(c)].push_back(
                WorkItem{i, j});
        }
    }

    auto registry = std::make_shared<ModelRegistry>();
    registry->publish("m", modelA);
    ShardedServer server(registry, tinyOptions(),
                         ShardedServer::Options()
                             .withNumShards(4)
                             .withQueueCapacity(128)
                             .withMaxBatchSize(16)
                             .withMaxBatchDelay(microseconds(200)));

    std::thread writer([&] {
        for (int s = 0; s < kSwaps; ++s) {
            std::this_thread::sleep_for(microseconds(400));
            registry->publish("m", s % 2 == 0 ? modelB : modelA);
        }
    });

    std::vector<int> mismatches(kClients, 0);
    std::vector<int> failures(kClients, 0);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            std::vector<std::future<Result<double>>> futures;
            futures.reserve(kRequestsPerClient);
            for (const WorkItem& w :
                 schedule[static_cast<std::size_t>(c)])
                futures.push_back(server.submitCompare(
                    "m", trees[static_cast<std::size_t>(w.first)],
                    trees[static_cast<std::size_t>(w.second)]));
            for (int k = 0; k < kRequestsPerClient; ++k) {
                Result<double> got =
                    futures[static_cast<std::size_t>(k)].get();
                const WorkItem& w = schedule[static_cast<
                    std::size_t>(c)][static_cast<std::size_t>(k)];
                if (!got.isOk()) {
                    failures[static_cast<std::size_t>(c)]++;
                    continue;
                }
                double expectA = refA[pairSlot(w.first, w.second)];
                double expectB = refB[pairSlot(w.first, w.second)];
                if (got.value() != expectA &&
                    got.value() != expectB)
                    mismatches[static_cast<std::size_t>(c)]++;
            }
        });
    }
    for (std::thread& t : clients)
        t.join();
    writer.join();
    server.shutdown();

    for (int c = 0; c < kClients; ++c) {
        EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0)
            << "client " << c;
        EXPECT_EQ(mismatches[static_cast<std::size_t>(c)], 0)
            << "client " << c;
    }
    const auto total =
        static_cast<std::uint64_t>(kClients * kRequestsPerClient);
    ShardedServerStats stats = server.stats();
    EXPECT_EQ(stats.aggregate.requestsCompleted, total);
    EXPECT_EQ(stats.aggregate.requestsFailed, 0u);
}

} // namespace
} // namespace ccsa
