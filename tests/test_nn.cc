/**
 * @file
 * Tests for nn layers: embedding, linear, optimizers, initialisation,
 * serialisation, and small end-to-end convergence checks.
 */

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "gradcheck.hh"
#include "nn/embedding.hh"
#include "nn/init.hh"
#include "nn/linear.hh"
#include "nn/optim.hh"
#include "nn/serialize.hh"

namespace ccsa
{
namespace
{

using testutil::expectGradientsMatch;
using testutil::patterned;

TEST(Linear, ShapesAndGradients)
{
    Rng rng(1);
    nn::Linear lin(3, 2, rng);
    ag::Var x = ag::leaf(patterned(4, 3, 0.4f));
    ag::Var y = lin.forward(x);
    EXPECT_EQ(y.value().rows(), 4);
    EXPECT_EQ(y.value().cols(), 2);

    std::vector<ag::Var> leaves{x};
    for (auto* p : lin.parameters())
        leaves.push_back(p->var);
    ASSERT_EQ(leaves.size(), 3u);
    expectGradientsMatch(leaves, [&] {
        return ag::sumAllOp(ag::mul(lin.forward(leaves[0]),
                                    lin.forward(leaves[0])));
    });
}

TEST(Linear, InvalidDimsFatal)
{
    Rng rng(1);
    EXPECT_THROW(nn::Linear(0, 2, rng), FatalError);
}

TEST(Embedding, LookupMatchesTable)
{
    Rng rng(2);
    nn::Embedding emb(10, 4, rng);
    ag::Var out = emb.forward({3, 3, 7});
    EXPECT_EQ(out.value().rows(), 3);
    EXPECT_EQ(out.value().cols(), 4);
    for (int j = 0; j < 4; ++j) {
        EXPECT_FLOAT_EQ(out.value().at(0, j), emb.table().at(3, j));
        EXPECT_FLOAT_EQ(out.value().at(1, j), emb.table().at(3, j));
        EXPECT_FLOAT_EQ(out.value().at(2, j), emb.table().at(7, j));
    }
}

TEST(Embedding, GradientFlowsToUsedRowsOnly)
{
    Rng rng(3);
    nn::Embedding emb(6, 3, rng);
    ag::Var out = emb.forward({1, 1});
    ag::backward(ag::sumAllOp(out));
    Tensor& g = emb.parameters()[0]->var.grad();
    for (int j = 0; j < 3; ++j) {
        EXPECT_FLOAT_EQ(g.at(1, j), 2.0f); // used twice
        EXPECT_FLOAT_EQ(g.at(0, j), 0.0f);
        EXPECT_FLOAT_EQ(g.at(5, j), 0.0f);
    }
}

TEST(Init, XavierBounds)
{
    Rng rng(4);
    Tensor w = nn::xavierUniform(30, 40, rng);
    float bound = std::sqrt(6.0f / 70.0f);
    for (int i = 0; i < w.rows(); ++i)
        for (int j = 0; j < w.cols(); ++j) {
            EXPECT_LE(w.at(i, j), bound);
            EXPECT_GE(w.at(i, j), -bound);
        }
}

TEST(Optim, SgdConvergesOnLinearRegression)
{
    // Fit y = x * W_true with SGD on MSE.
    Rng rng(5);
    Tensor w_true = patterned(3, 1, 1.0f);
    Tensor x(20, 3);
    x.fillNormal(rng, 0.0f, 1.0f);
    Tensor y = x.matmul(w_true);

    nn::Parameter w("w", nn::xavierUniform(3, 1, rng));
    nn::Sgd opt({&w}, 0.1f, 0.5f);
    double last = 1e9;
    for (int step = 0; step < 300; ++step) {
        ag::Var pred = ag::matmul(ag::constant(x), w.var);
        ag::Var loss = ag::mseLoss(pred, y);
        opt.zeroGrad();
        ag::backward(loss);
        opt.step();
        last = loss.value().at(0, 0);
    }
    EXPECT_LT(last, 1e-3);
}

TEST(Optim, AdamConvergesOnLogisticRegression)
{
    Rng rng(6);
    // Two separable clusters.
    Tensor x(40, 2);
    Tensor labels(40, 1);
    for (int i = 0; i < 40; ++i) {
        bool pos = i % 2 == 0;
        x.at(i, 0) = static_cast<float>(
            rng.normal(pos ? 2.0 : -2.0, 0.5));
        x.at(i, 1) = static_cast<float>(
            rng.normal(pos ? -1.0 : 1.0, 0.5));
        labels.at(i, 0) = pos ? 1.0f : 0.0f;
    }
    nn::Linear lin(2, 1, rng);
    nn::Adam opt(lin.parameters(), 0.05f);
    double last = 1e9;
    for (int step = 0; step < 200; ++step) {
        ag::Var logits = lin.forward(ag::constant(x));
        ag::Var loss = ag::bceWithLogits(logits, labels);
        opt.zeroGrad();
        ag::backward(loss);
        opt.step();
        last = loss.value().at(0, 0);
    }
    EXPECT_LT(last, 0.05);
}

TEST(Optim, ClipGradNormScales)
{
    nn::Parameter w("w", Tensor(1, 2, 0.0f));
    nn::Sgd opt({&w}, 1.0f);
    w.var.grad().at(0, 0) = 30.0f;
    w.var.grad().at(0, 1) = 40.0f; // norm = 50
    opt.clipGradNorm(5.0f);
    EXPECT_NEAR(w.var.grad().at(0, 0), 3.0f, 1e-5f);
    EXPECT_NEAR(w.var.grad().at(0, 1), 4.0f, 1e-5f);
}

TEST(Optim, NoParamsFatal)
{
    EXPECT_THROW(nn::Sgd({}, 0.1f), FatalError);
}

TEST(Serialize, RoundTripPreservesValues)
{
    Rng rng(7);
    nn::Parameter a("layer.a", nn::xavierUniform(3, 4, rng));
    nn::Parameter b("layer.b", nn::xavierUniform(1, 4, rng));
    std::string path =
        (std::filesystem::temp_directory_path() /
         "ccsa_serialize_test.bin").string();
    nn::saveParameters(path, {&a, &b});

    nn::Parameter a2("layer.a", Tensor(3, 4, 0.0f));
    nn::Parameter b2("layer.b", Tensor(1, 4, 0.0f));
    nn::loadParameters(path, {&a2, &b2});
    EXPECT_LT(a2.var.value().maxAbsDiff(a.var.value()), 1e-7f);
    EXPECT_LT(b2.var.value().maxAbsDiff(b.var.value()), 1e-7f);
    std::remove(path.c_str());
}

TEST(Serialize, MissingParameterFatal)
{
    Rng rng(8);
    nn::Parameter a("p.a", nn::xavierUniform(2, 2, rng));
    std::string path =
        (std::filesystem::temp_directory_path() /
         "ccsa_serialize_missing.bin").string();
    nn::saveParameters(path, {&a});
    nn::Parameter other("p.other", Tensor(2, 2, 0.0f));
    EXPECT_THROW(nn::loadParameters(path, {&other}), FatalError);
    std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchFatal)
{
    Rng rng(9);
    nn::Parameter a("p.a", nn::xavierUniform(2, 2, rng));
    std::string path =
        (std::filesystem::temp_directory_path() /
         "ccsa_serialize_shape.bin").string();
    nn::saveParameters(path, {&a});
    nn::Parameter wrong("p.a", Tensor(3, 2, 0.0f));
    EXPECT_THROW(nn::loadParameters(path, {&wrong}), FatalError);
    std::remove(path.c_str());
}

TEST(Module, ParameterCountMatches)
{
    Rng rng(10);
    nn::Linear lin(4, 3, rng);
    EXPECT_EQ(lin.parameterCount(), 4u * 3u + 3u);
}

} // namespace
} // namespace ccsa
