/**
 * @file
 * Tests for the deterministic PCG32 generator.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "base/rng.hh"

namespace ccsa
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.nextU32() == b.nextU32())
            ++same;
    EXPECT_LT(same, 4);
}

TEST(Rng, DifferentStreamsDiffer)
{
    Rng a(7, 1), b(7, 2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.nextU32() == b.nextU32())
            ++same;
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        int v = rng.uniformInt(-5, 9);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(3);
    EXPECT_EQ(rng.uniformInt(4, 4), 4);
}

TEST(Rng, UniformIntInvalidPanics)
{
    Rng rng(3);
    EXPECT_THROW(rng.uniformInt(2, 1), PanicError);
}

TEST(Rng, UniformUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 4000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 4000.0, 0.5, 0.03);
}

TEST(Rng, NormalMoments)
{
    Rng rng(5);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.08);
}

TEST(Rng, LogNormalPositive)
{
    Rng rng(9);
    for (int i = 0; i < 500; ++i)
        EXPECT_GT(rng.logNormal(0.0, 0.3), 0.0);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, SampleIndicesDistinctInRange)
{
    Rng rng(19);
    auto idx = rng.sampleIndices(50, 20);
    EXPECT_EQ(idx.size(), 20u);
    std::set<int> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 20u);
    for (int i : idx) {
        EXPECT_GE(i, 0);
        EXPECT_LT(i, 50);
    }
}

TEST(Rng, SampleIndicesFull)
{
    Rng rng(19);
    auto idx = rng.sampleIndices(5, 5);
    std::set<int> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 5u);
}

TEST(Rng, SampleIndicesInvalidPanics)
{
    Rng rng(19);
    EXPECT_THROW(rng.sampleIndices(3, 4), PanicError);
}

TEST(Rng, ChoicePicksExistingElement)
{
    Rng rng(23);
    std::vector<int> v{10, 20, 30};
    for (int i = 0; i < 50; ++i) {
        int c = rng.choice(v);
        EXPECT_TRUE(c == 10 || c == 20 || c == 30);
    }
}

TEST(Rng, ChoiceEmptyPanics)
{
    Rng rng(23);
    std::vector<int> v;
    EXPECT_THROW(rng.choice(v), PanicError);
}

TEST(Rng, SplitIndependence)
{
    Rng parent(31);
    Rng child = parent.split();
    // Child continues to work and differs from parent stream.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (parent.nextU32() == child.nextU32())
            ++same;
    EXPECT_LT(same, 4);
}

} // namespace
} // namespace ccsa
