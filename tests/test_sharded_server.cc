/**
 * @file
 * The ISSUE-4 stress/property harness for sharded serving. Pinned
 * contracts: ShardedServer results are bitwise-identical to the
 * synchronous Engine at 1, 2, and 4 shards under a deterministic
 * multi-producer schedule (seeded base/rng streams, precomputed
 * before any thread starts); cross-shard requests split and join
 * without reordering; shutdown drains every accepted request;
 * trySubmit load-shed is all-or-nothing even for requests split
 * across shards; and the stats aggregate is exactly the per-shard
 * rows merged (latency percentiles from merged histograms, cache
 * partitions summing to the shared cache).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "base/rng.hh"
#include "frontend/parser.hh"
#include "serve/sharded_server.hh"

namespace ccsa
{
namespace
{

using std::chrono::microseconds;

Ast
tinyProgram(int loops)
{
    std::string src = "int main() {\n int n;\n cin >> n;\n";
    for (int i = 0; i < loops; ++i) {
        std::string v = "i" + std::to_string(i);
        src += " for (int " + v + " = 0; " + v + " < n; " + v +
            "++) { int z" + std::to_string(i) + " = " + v + "; }\n";
    }
    src += " return 0;\n}\n";
    return parseAndPrune(src);
}

Engine::Options
tinyOptions()
{
    return Engine::Options()
        .withEmbedDim(8)
        .withHiddenDim(8)
        .withSeed(7)
        .withThreads(1);
}

// ------------------------------------- BoundedQueue::tryPushAll

TEST(BoundedQueue, TryPushAllIsAllOrNothing)
{
    BoundedQueue<int> q(3);
    std::vector<int> first{1, 2};
    EXPECT_EQ(q.tryPushAll(first), QueuePush::Ok);
    EXPECT_EQ(q.size(), 2u);

    // Two items into one free slot: nothing may enter.
    std::vector<int> overflow{3, 4};
    EXPECT_EQ(q.tryPushAll(overflow), QueuePush::Full);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(overflow, (std::vector<int>{3, 4})); // untouched

    std::vector<int> last{3};
    EXPECT_EQ(q.tryPushAll(last), QueuePush::Ok);
    EXPECT_EQ(q.pop().value(), 1); // FIFO preserved across batches
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);

    std::vector<int> none;
    EXPECT_EQ(q.tryPushAll(none), QueuePush::Ok); // empty is a no-op
    EXPECT_EQ(q.size(), 0u);

    q.close();
    std::vector<int> late{9};
    EXPECT_EQ(q.tryPushAll(late), QueuePush::Closed);
    EXPECT_EQ(late, (std::vector<int>{9}));
}

// ------------------------------------------------- ShardedServer

TEST(ShardedServer, CompareMatchesSynchronousEngineBitwise)
{
    Engine reference(tinyOptions());
    Ast a = tinyProgram(2);
    Ast b = tinyProgram(5);
    double expected = reference.compare(a, b).value();

    for (std::size_t shards : {1u, 2u, 4u, 8u}) {
        ShardedServer server(
            tinyOptions(),
            ShardedServer::Options().withNumShards(shards));
        Result<double> got = server.submitCompare(a, b).get();
        ASSERT_TRUE(got.isOk()) << "shards=" << shards;
        EXPECT_EQ(got.value(), expected) << "shards=" << shards;
    }
}

TEST(ShardedServer, SplitJoinPreservesRequestOrderBitwise)
{
    Engine reference(tinyOptions());
    std::vector<Ast> trees;
    for (int i = 1; i <= 6; ++i)
        trees.push_back(tinyProgram(i));
    std::vector<Engine::PairRequest> pairs;
    for (std::size_t i = 0; i < trees.size(); ++i)
        for (std::size_t j = 0; j < trees.size(); ++j)
            if (i != j)
                pairs.push_back({&trees[i], &trees[j]});
    std::vector<double> expected =
        reference.compareMany(pairs).value();

    for (std::size_t shards : {1u, 2u, 4u}) {
        ShardedServer server(
            tinyOptions(),
            ShardedServer::Options().withNumShards(shards));
        auto got = server.submitCompareMany(pairs).get();
        ASSERT_TRUE(got.isOk()) << "shards=" << shards;
        ASSERT_EQ(got.value().size(), expected.size());
        // The 30-pair request is split across shards and joined;
        // every slice must land back in its original slot with the
        // exact synchronous value.
        for (std::size_t k = 0; k < expected.size(); ++k)
            EXPECT_EQ(got.value()[k], expected[k])
                << "shards=" << shards << " pair " << k;
    }
}

TEST(ShardedServer, RankSplitsAcrossShardsAndMatchesEngineExactly)
{
    Engine reference(tinyOptions());
    std::vector<Ast> trees;
    for (int i = 1; i <= 5; ++i)
        trees.push_back(tinyProgram(i));
    std::vector<const Ast*> candidates;
    for (const Ast& t : trees)
        candidates.push_back(&t);
    auto expected = reference.rank(candidates).value();

    for (std::size_t shards : {1u, 2u, 4u}) {
        ShardedServer server(
            tinyOptions(),
            ShardedServer::Options().withNumShards(shards));
        auto got = server.submitRank(candidates).get();
        ASSERT_TRUE(got.isOk()) << "shards=" << shards;
        ASSERT_EQ(got.value().size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(got.value()[i].index, expected[i].index);
            EXPECT_EQ(got.value()[i].wins, expected[i].wins);
            EXPECT_EQ(got.value()[i].meanProbFaster,
                      expected[i].meanProbFaster);
        }
    }
}

TEST(ShardedServer, DeterministicMultiProducerStressMatchesSyncPath)
{
    constexpr int kClients = 6;
    constexpr int kRequestsPerClient = 60;
    constexpr int kTrees = 8;

    std::vector<Ast> trees;
    for (int i = 1; i <= kTrees; ++i)
        trees.push_back(tinyProgram(i));

    // Reference matrix from the synchronous path.
    Engine reference(tinyOptions());
    std::vector<Engine::PairRequest> allPairs;
    for (int i = 0; i < kTrees; ++i)
        for (int j = 0; j < kTrees; ++j)
            if (i != j)
                allPairs.push_back({&trees[i], &trees[j]});
    std::vector<double> refProbs =
        reference.compareMany(allPairs).value();
    auto expectedProb = [&](int i, int j) {
        int row = i * (kTrees - 1);
        int col = j < i ? j : j - 1;
        return refProbs[static_cast<std::size_t>(row + col)];
    };

    // Fixed request schedule: one seeded base/rng stream per client,
    // fully materialised BEFORE any thread runs, so every shard
    // configuration replays the identical workload.
    struct WorkItem
    {
        int first;
        int second;
    };
    std::vector<std::vector<WorkItem>> schedule(kClients);
    for (int c = 0; c < kClients; ++c) {
        Rng rng(9000 + static_cast<std::uint64_t>(c));
        for (int k = 0; k < kRequestsPerClient; ++k) {
            int i = rng.uniformInt(0, kTrees - 1);
            int j = rng.uniformInt(0, kTrees - 2);
            if (j >= i)
                ++j;
            schedule[static_cast<std::size_t>(c)].push_back(
                WorkItem{i, j});
        }
    }

    for (std::size_t shards : {1u, 2u, 4u}) {
        ShardedServer server(tinyOptions(),
                             ShardedServer::Options()
                                 .withNumShards(shards)
                                 .withQueueCapacity(64)
                                 .withMaxBatchSize(16)
                                 .withMaxBatchDelay(
                                     microseconds(200)));
        std::vector<std::thread> clients;
        std::vector<int> mismatches(kClients, 0);
        std::vector<int> failures(kClients, 0);
        for (int c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                std::vector<std::future<Result<double>>> futures;
                futures.reserve(kRequestsPerClient);
                for (const WorkItem& w :
                     schedule[static_cast<std::size_t>(c)])
                    futures.push_back(server.submitCompare(
                        trees[static_cast<std::size_t>(w.first)],
                        trees[static_cast<std::size_t>(w.second)]));
                for (int k = 0; k < kRequestsPerClient; ++k) {
                    Result<double> got =
                        futures[static_cast<std::size_t>(k)].get();
                    const WorkItem& w = schedule[static_cast<
                        std::size_t>(c)][static_cast<std::size_t>(k)];
                    if (!got.isOk())
                        failures[static_cast<std::size_t>(c)]++;
                    else if (got.value() !=
                             expectedProb(w.first, w.second))
                        mismatches[static_cast<std::size_t>(c)]++;
                }
            });
        }
        for (std::thread& t : clients)
            t.join();
        for (int c = 0; c < kClients; ++c) {
            EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0)
                << "shards=" << shards << " client " << c;
            EXPECT_EQ(mismatches[static_cast<std::size_t>(c)], 0)
                << "shards=" << shards << " client " << c;
        }

        ShardedServerStats stats = server.stats();
        const auto total = static_cast<std::uint64_t>(
            kClients * kRequestsPerClient);
        EXPECT_EQ(stats.aggregate.requestsSubmitted, total);
        EXPECT_EQ(stats.aggregate.requestsCompleted, total);
        EXPECT_EQ(stats.aggregate.requestsFailed, 0u);
        EXPECT_EQ(stats.aggregate.pairsServed, total);
        EXPECT_GE(stats.aggregate.batches, 1u);
        // Every distinct tree is resident on exactly one partition
        // of the shared cache.
        EXPECT_EQ(server.cache().size(),
                  static_cast<std::size_t>(kTrees));
    }
}

TEST(ShardedServer, ShutdownDrainsEveryAcceptedRequest)
{
    Engine reference(tinyOptions());
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(3);
    std::vector<Ast> trees;
    for (int i = 1; i <= 5; ++i)
        trees.push_back(tinyProgram(i));
    std::vector<Engine::PairRequest> manyPairs;
    for (std::size_t i = 0; i + 1 < trees.size(); ++i)
        manyPairs.push_back({&trees[i], &trees[i + 1]});

    // Paused 4-shard server: nothing runs until shutdown, which must
    // still answer every accepted request — including ones already
    // split across shards — before returning.
    ShardedServer server(tinyOptions(),
                         ShardedServer::Options()
                             .withNumShards(4)
                             .withStartPaused(true)
                             .withQueueCapacity(256));
    std::vector<std::future<Result<double>>> singles;
    for (int k = 0; k < 20; ++k)
        singles.push_back(server.submitCompare(a, b));
    auto split = server.submitCompareMany(manyPairs);
    EXPECT_GT(server.stats().aggregate.queueDepth, 0u);

    server.shutdown();
    EXPECT_TRUE(server.isShutdown());

    double expected = reference.compare(a, b).value();
    for (auto& f : singles) {
        Result<double> got = f.get();
        ASSERT_TRUE(got.isOk());
        EXPECT_EQ(got.value(), expected);
    }
    auto expectedMany = reference.compareMany(manyPairs).value();
    auto gotMany = split.get();
    ASSERT_TRUE(gotMany.isOk());
    ASSERT_EQ(gotMany.value().size(), expectedMany.size());
    for (std::size_t k = 0; k < expectedMany.size(); ++k)
        EXPECT_EQ(gotMany.value()[k], expectedMany[k]);
    EXPECT_EQ(server.stats().aggregate.requestsCompleted, 21u);
}

TEST(ShardedServer, DeadlineExpiresWhileQueuedAndCountsOnce)
{
    Engine reference(tinyOptions());
    std::vector<Ast> trees;
    for (int i = 1; i <= 5; ++i)
        trees.push_back(tinyProgram(i));
    std::vector<Engine::PairRequest> pairs;
    for (std::size_t i = 0; i + 1 < trees.size(); ++i)
        pairs.push_back({&trees[i], &trees[i + 1]});

    // Paused 2-shard server: the split request expires on every
    // shard it touched, but the deadline rejection is attributed to
    // ONE request — the join must not double-count slices.
    ShardedServer server(tinyOptions(),
                         ShardedServer::Options()
                             .withNumShards(2)
                             .withStartPaused(true));
    auto expired = server.submitCompareMany(
        SubmitOptions().withDeadline(
            std::chrono::microseconds(1000)),
        pairs);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.start();
    auto got = expired.get();
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), StatusCode::DeadlineExceeded);

    // A generous deadline completes with the exact sync values.
    auto fine = server.submitCompareMany(
        SubmitOptions().withDeadline(
            std::chrono::microseconds(30'000'000)),
        pairs);
    auto fineGot = fine.get();
    ASSERT_TRUE(fineGot.isOk());
    EXPECT_EQ(fineGot.value(), reference.compareMany(pairs).value());

    server.shutdown();
    ServerStats stats = server.stats().aggregate;
    EXPECT_EQ(stats.requestsSubmitted, 2u);
    EXPECT_EQ(stats.requestsRejectedDeadline, 1u);
    EXPECT_EQ(stats.requestsCompleted, 1u);
    EXPECT_EQ(stats.requestsSubmitted,
              stats.requestsCompleted + stats.requestsFailed +
                  stats.requestsRejectedDeadline);
}

TEST(ShardedServer, TrySubmitLoadShedIsAllOrNothingAcrossShards)
{
    // Find two trees whose digests live on different partitions of a
    // 4-way cache, so a pair batch over them must split into at
    // least two queue slices.
    std::vector<Ast> pool;
    for (int i = 1; i <= 8; ++i)
        pool.push_back(tinyProgram(i));
    int first = 0, second = -1;
    std::size_t shard0 =
        ShardedEncodingCache::shardOf(digestAst(pool[0]), 4);
    for (std::size_t i = 1; i < pool.size(); ++i) {
        if (ShardedEncodingCache::shardOf(digestAst(pool[i]), 4) !=
            shard0) {
            second = static_cast<int>(i);
            break;
        }
    }
    ASSERT_GE(second, 0) << "pool unexpectedly hashed to one shard";

    ShardedServer server(tinyOptions(),
                         ShardedServer::Options()
                             .withNumShards(4)
                             .withStartPaused(true)
                             .withQueueCapacity(1));
    // Splits into two slices, but only one slot exists: the whole
    // request is shed and the queue stays empty — no stranded half.
    std::vector<Engine::PairRequest> crossShard{
        {&pool[static_cast<std::size_t>(first)],
         &pool[static_cast<std::size_t>(second)]},
        {&pool[static_cast<std::size_t>(second)],
         &pool[static_cast<std::size_t>(first)]}};
    auto shed = server.trySubmitCompareMany(crossShard);
    EXPECT_FALSE(shed.has_value());
    EXPECT_EQ(server.stats().aggregate.queueDepth, 0u);
    EXPECT_EQ(server.stats().aggregate.requestsRejected, 1u);

    // A single-pair request fits the one slot...
    auto accepted = server.trySubmitCompare(pool[0], pool[1]);
    ASSERT_TRUE(accepted.has_value());
    EXPECT_EQ(server.stats().aggregate.queueDepth, 1u);
    // ...and the next one is shed.
    EXPECT_FALSE(server.trySubmitCompare(pool[0], pool[2])
                     .has_value());
    EXPECT_EQ(server.stats().aggregate.requestsRejected, 2u);

    // Accepted work is still answered once draining starts.
    server.shutdown();
    EXPECT_TRUE(accepted->get().isOk());
    EXPECT_EQ(server.stats().aggregate.requestsCompleted, 1u);
}

TEST(ShardedServer, SubmitAfterShutdownResolvesUnavailable)
{
    Ast a = tinyProgram(1);
    Ast b = tinyProgram(2);
    ShardedServer server(
        tinyOptions(), ShardedServer::Options().withNumShards(2));
    server.shutdown();
    server.shutdown(); // idempotent

    auto blocking = server.submitCompare(a, b).get();
    ASSERT_FALSE(blocking.isOk());
    EXPECT_EQ(blocking.status().code(), StatusCode::Unavailable);

    auto attempted = server.trySubmitCompare(a, b);
    ASSERT_TRUE(attempted.has_value());
    auto tried = attempted->get();
    ASSERT_FALSE(tried.isOk());
    EXPECT_EQ(tried.status().code(), StatusCode::Unavailable);
    EXPECT_GE(server.stats().aggregate.requestsRejected, 2u);
}

TEST(ShardedServer, TrySubmitOfSplitRequestAfterShutdownResolves)
{
    // Regression: a cross-shard request rejected by a CLOSED queue
    // must resolve every slice, or the join never fires and the
    // caller's future dies as a broken promise instead of carrying
    // Unavailable.
    std::vector<Ast> pool;
    for (int i = 1; i <= 8; ++i)
        pool.push_back(tinyProgram(i));
    std::size_t shard0 =
        ShardedEncodingCache::shardOf(digestAst(pool[0]), 4);
    int other = -1;
    for (std::size_t i = 1; i < pool.size(); ++i) {
        if (ShardedEncodingCache::shardOf(digestAst(pool[i]), 4) !=
            shard0) {
            other = static_cast<int>(i);
            break;
        }
    }
    ASSERT_GE(other, 0) << "pool unexpectedly hashed to one shard";

    ShardedServer server(
        tinyOptions(), ShardedServer::Options().withNumShards(4));
    server.shutdown();

    std::vector<Engine::PairRequest> crossShard{
        {&pool[0], &pool[static_cast<std::size_t>(other)]},
        {&pool[static_cast<std::size_t>(other)], &pool[0]}};
    auto attempted = server.trySubmitCompareMany(crossShard);
    ASSERT_TRUE(attempted.has_value());
    auto got = attempted->get(); // must not throw broken_promise
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.status().code(), StatusCode::Unavailable);

    // The blocking path makes the same promise.
    auto blocked = server.submitCompareMany(crossShard).get();
    ASSERT_FALSE(blocked.isOk());
    EXPECT_EQ(blocked.status().code(), StatusCode::Unavailable);
    // Matching AsyncServer, a refused request counts as rejected
    // ONLY — completed/failed/rejected stay disjoint outcomes.
    EXPECT_EQ(server.stats().aggregate.requestsRejected, 2u);
    EXPECT_EQ(server.stats().aggregate.requestsFailed, 0u);
    EXPECT_EQ(server.stats().aggregate.requestsCompleted, 0u);
}

TEST(ShardedServer, MalformedRequestsFailOnlyTheirOwnFuture)
{
    Ast a = tinyProgram(1);
    ShardedServer server(
        tinyOptions(), ShardedServer::Options().withNumShards(2));

    auto nullPair = server
                        .submitCompareMany(
                            {Engine::PairRequest{&a, nullptr}})
                        .get();
    ASSERT_FALSE(nullPair.isOk());
    EXPECT_EQ(nullPair.status().code(), StatusCode::InvalidArgument);

    auto degenerate = server.submitRank({&a}).get();
    ASSERT_FALSE(degenerate.isOk());
    EXPECT_EQ(degenerate.status().code(),
              StatusCode::InvalidArgument);

    auto empty = server.submitCompareMany({}).get();
    ASSERT_TRUE(empty.isOk());
    EXPECT_TRUE(empty.value().empty());

    Ast b = tinyProgram(2);
    EXPECT_TRUE(server.submitCompare(a, b).get().isOk());
    EXPECT_EQ(server.stats().aggregate.requestsFailed, 2u);
}

TEST(ShardedServer, StatsAggregateIsExactlyTheShardRowsMerged)
{
    std::vector<Ast> trees;
    for (int i = 1; i <= 6; ++i)
        trees.push_back(tinyProgram(i));
    std::vector<Engine::PairRequest> pairs;
    for (std::size_t i = 0; i < trees.size(); ++i)
        for (std::size_t j = 0; j < trees.size(); ++j)
            if (i != j)
                pairs.push_back({&trees[i], &trees[j]});

    ShardedServer server(
        tinyOptions(), ShardedServer::Options().withNumShards(4));
    // Two rounds: the second one hits the now-warm shared cache.
    for (int round = 0; round < 2; ++round)
        ASSERT_TRUE(server.submitCompareMany(pairs).get().isOk());

    ShardedServerStats stats = server.stats();
    ASSERT_EQ(stats.shards.size(), 4u);

    std::uint64_t batches = 0, pairsServed = 0, latencyCount = 0;
    std::uint64_t hits = 0, misses = 0, evictions = 0;
    std::size_t cacheSize = 0;
    for (const ServerStats& row : stats.shards) {
        batches += row.batches;
        pairsServed += row.pairsServed;
        latencyCount += row.latencyUs.count();
        hits += row.engine.cacheHits;
        misses += row.engine.cacheMisses;
        evictions += row.engine.cacheEvictions;
        cacheSize += row.engine.cacheSize;
    }
    EXPECT_EQ(stats.aggregate.batches, batches);
    EXPECT_EQ(stats.aggregate.pairsServed, pairsServed);
    EXPECT_EQ(stats.aggregate.pairsServed,
              static_cast<std::uint64_t>(2 * pairs.size()));
    EXPECT_EQ(stats.aggregate.latencyUs.count(), latencyCount);
    EXPECT_EQ(stats.aggregate.batchSizes.sum(),
              stats.aggregate.pairsServed);

    // Cache partition rows sum to the shared cache's own counters.
    EXPECT_EQ(stats.aggregate.engine.cacheHits, hits);
    EXPECT_EQ(stats.aggregate.engine.cacheMisses, misses);
    EXPECT_EQ(stats.aggregate.engine.cacheEvictions, evictions);
    EXPECT_EQ(stats.aggregate.engine.cacheSize, cacheSize);
    EXPECT_EQ(hits, server.cache().stats().hits);
    EXPECT_EQ(misses, server.cache().stats().misses);
    EXPECT_EQ(cacheSize, server.cache().size());
    EXPECT_EQ(cacheSize, trees.size());
    // The warm round guarantees real hits.
    EXPECT_GE(hits, trees.size());

    // Aggregate percentiles come from the merged histogram, never
    // from averaging shard percentiles.
    Histogram merged;
    for (const ServerStats& row : stats.shards)
        merged.merge(row.latencyUs);
    EXPECT_DOUBLE_EQ(stats.aggregate.latencyP50Ms,
                     static_cast<double>(
                         merged.quantileUpperBound(0.5)) /
                         1000.0);
    EXPECT_DOUBLE_EQ(stats.aggregate.latencyP99Ms,
                     static_cast<double>(
                         merged.quantileUpperBound(0.99)) /
                         1000.0);
    EXPECT_LE(stats.aggregate.latencyP50Ms,
              stats.aggregate.latencyP99Ms);
    EXPECT_LE(stats.aggregate.latencyP99Ms,
              stats.aggregate.latencyMaxMs);
}

TEST(ShardedServer, ServesTrainedSharedModelAcrossAllShards)
{
    // All shard engines must serve the SAME model object: a model
    // handed in once answers identically through every shard.
    auto model = std::make_shared<ComparativePredictor>(
        tinyOptions().encoder, /*seed=*/7);
    Engine reference(model);
    Ast a = tinyProgram(2);
    Ast b = tinyProgram(4);
    double expected = reference.compare(a, b).value();

    ShardedServer server(model, tinyOptions(),
                         ShardedServer::Options().withNumShards(3));
    for (std::size_t s = 0; s < server.numShards(); ++s)
        EXPECT_EQ(&server.shardEngine(s).model(), model.get());
    auto got = server.submitCompare(a, b).get();
    ASSERT_TRUE(got.isOk());
    EXPECT_EQ(got.value(), expected);
}

} // namespace
} // namespace ccsa
