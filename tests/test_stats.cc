/**
 * @file
 * Tests for descriptive statistics and string/table helpers.
 */

#include <chrono>
#include <sstream>

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/stats.hh"
#include "base/str.hh"
#include "base/table.hh"
#include "serve/server_stats.hh"

namespace ccsa
{
namespace
{

TEST(Histogram, BucketsByPowerOfTwoUpperBounds)
{
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1), 0u);
    EXPECT_EQ(Histogram::bucketIndex(2), 1u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 2u);
    EXPECT_EQ(Histogram::bucketIndex(5), 3u);
    EXPECT_EQ(Histogram::bucketIndex(65536), 16u);
    EXPECT_EQ(Histogram::bucketIndex(1u << 24),
              Histogram::kBuckets - 2);
    // Values beyond the largest bound land in the overflow bucket.
    EXPECT_EQ(Histogram::bucketIndex(1u << 30),
              Histogram::kBuckets - 1);
    EXPECT_EQ(Histogram::bucketUpperBound(3), 8u);
}

TEST(Histogram, TracksCountSumMaxAndMean)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.meanValue(), 0.0);
    EXPECT_EQ(h.toString(), "(empty)");

    h.add(1);
    h.add(1);
    h.add(6);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 8u);
    EXPECT_EQ(h.max(), 6u);
    EXPECT_DOUBLE_EQ(h.meanValue(), 8.0 / 3.0);
    EXPECT_EQ(h.bucket(0), 2u); // the two 1s
    EXPECT_EQ(h.bucket(3), 1u); // 6 is in (4, 8]
    EXPECT_EQ(h.toString(), "<=1:2 <=8:1");
}

TEST(Histogram, MergeCombinesCountsSumAndMaxLosslessly)
{
    Histogram a, b, expected;
    for (std::size_t v : {1u, 3u, 3u, 9u}) {
        a.add(v);
        expected.add(v);
    }
    for (std::size_t v : {2u, 40u, 500u}) {
        b.add(v);
        expected.add(v);
    }

    a.merge(b);
    EXPECT_EQ(a.count(), expected.count());
    EXPECT_EQ(a.sum(), expected.sum());
    EXPECT_EQ(a.max(), expected.max());
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
        EXPECT_EQ(a.bucket(i), expected.bucket(i)) << "bucket " << i;
}

TEST(Histogram, QuantileUpperBoundWalksTheBuckets)
{
    Histogram h;
    EXPECT_EQ(h.quantileUpperBound(0.5), 0u); // empty
    for (int i = 0; i < 90; ++i)
        h.add(1);
    for (int i = 0; i < 10; ++i)
        h.add(100);
    // Ranks 1..90 are 1s; ranks 91..100 live in the (64,128] bucket.
    EXPECT_EQ(h.quantileUpperBound(0.5), 1u);
    EXPECT_EQ(h.quantileUpperBound(0.9), 1u);
    EXPECT_EQ(h.quantileUpperBound(0.95), 100u); // clamped to max
    EXPECT_EQ(h.quantileUpperBound(1.0), 100u);
    EXPECT_THROW(h.quantileUpperBound(1.5), FatalError);

    // A single sample answers every quantile with itself.
    Histogram one;
    one.add(7);
    EXPECT_EQ(one.quantileUpperBound(0.0), 7u);
    EXPECT_EQ(one.quantileUpperBound(0.99), 7u);
}

TEST(Histogram, QuantileOfOverflowBucketReportsObservedMax)
{
    Histogram h;
    h.add(1u << 30); // beyond the last bounded bucket
    h.add(1);
    EXPECT_EQ(h.quantileUpperBound(1.0), 1u << 30);
}

TEST(Histogram, MergedQuantilesBeatAveragedPerShardQuantiles)
{
    // The sharded-serving regression (ISSUE 4): per-shard p99s must
    // NOT be averaged. Shard A serves 990 fast requests, shard B
    // serves 10 slow ones; the fleet p99 is still fast, but the
    // average of per-shard p99s is dominated by the tiny slow shard.
    Histogram shardA, shardB, fleet;
    for (int i = 0; i < 990; ++i) {
        shardA.add(2);
        fleet.add(2);
    }
    for (int i = 0; i < 10; ++i) {
        shardB.add(4096);
        fleet.add(4096);
    }

    double naive =
        (static_cast<double>(shardA.quantileUpperBound(0.99)) +
         static_cast<double>(shardB.quantileUpperBound(0.99))) /
        2.0;

    Histogram merged = shardA;
    merged.merge(shardB);
    // Merging histograms is lossless: the merged distribution is
    // exactly the fleet's, so its quantiles are the fleet quantiles.
    EXPECT_EQ(merged.quantileUpperBound(0.99),
              fleet.quantileUpperBound(0.99));
    EXPECT_EQ(merged.quantileUpperBound(0.99), 2u);
    // The naive merge is off by three orders of magnitude.
    EXPECT_GT(naive, 2000.0);
}

TEST(Histogram, BucketIndexOutOfRangeIsFatal)
{
    Histogram h;
    EXPECT_THROW(h.bucket(Histogram::kBuckets), FatalError);
    EXPECT_THROW(Histogram::bucketUpperBound(Histogram::kBuckets),
                 FatalError);
}

TEST(Histogram, EmptyHistogramReportsZeros)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.meanValue(), 0.0);
    // Quantiles of an empty sample are 0 at every p, including the
    // extremes.
    EXPECT_EQ(h.quantileUpperBound(0.0), 0u);
    EXPECT_EQ(h.quantileUpperBound(0.5), 0u);
    EXPECT_EQ(h.quantileUpperBound(1.0), 0u);
}

TEST(Histogram, SingleSampleDrivesEveryQuantile)
{
    Histogram h;
    h.add(37);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.max(), 37u);
    // With one sample, every quantile is that sample (clamped to the
    // observed max, not the bucket's upper bound).
    EXPECT_EQ(h.quantileUpperBound(0.0), 37u);
    EXPECT_EQ(h.quantileUpperBound(0.5), 37u);
    EXPECT_EQ(h.quantileUpperBound(0.99), 37u);
    EXPECT_EQ(h.quantileUpperBound(1.0), 37u);
}

TEST(Histogram, MergeWithEmptyIsIdentityBothWays)
{
    Histogram filled;
    filled.add(3);
    filled.add(1000);
    Histogram empty;

    Histogram a = filled;
    a.merge(empty); // empty right-operand: no change
    EXPECT_EQ(a.count(), filled.count());
    EXPECT_EQ(a.sum(), filled.sum());
    EXPECT_EQ(a.max(), filled.max());
    EXPECT_EQ(a.quantileUpperBound(0.5),
              filled.quantileUpperBound(0.5));

    Histogram b; // empty left-operand: becomes the other histogram
    b.merge(filled);
    EXPECT_EQ(b.count(), filled.count());
    EXPECT_EQ(b.sum(), filled.sum());
    EXPECT_EQ(b.max(), filled.max());
    EXPECT_EQ(b.quantileUpperBound(0.99),
              filled.quantileUpperBound(0.99));
}

TEST(ServerStatsHelpers, LatencySampleClampsNegativeDurations)
{
    using std::chrono::microseconds;
    // A clock blip (end before start) must never underflow into a
    // huge unsigned sample — it clamps to 0.
    EXPECT_EQ(latencySampleUs(microseconds(-5)), 0u);
    EXPECT_EQ(latencySampleUs(microseconds(0)), 0u);
    EXPECT_EQ(latencySampleUs(microseconds(123)), 123u);
}

TEST(ServerStatsHelpers, TenantPercentilesDeriveFromOwnHistogram)
{
    TenantStats row;
    fillTenantPercentiles(row); // empty histogram: no-op
    EXPECT_DOUBLE_EQ(row.latencyP50Ms, 0.0);
    EXPECT_DOUBLE_EQ(row.latencyP99Ms, 0.0);

    row.latencyUs.add(1000);
    row.latencyUs.add(1000);
    row.latencyUs.add(8000);
    fillTenantPercentiles(row);
    EXPECT_GT(row.latencyP50Ms, 0.0);
    EXPECT_GE(row.latencyP99Ms, row.latencyP50Ms);
    EXPECT_DOUBLE_EQ(row.latencyP99Ms, 8.0); // clamped to max
}

TEST(ServerStatsHelpers, MergeSumsRejectionSplitAndTenantRows)
{
    ServerStats a;
    a.requestsRejectedShed = 2;
    a.requestsRejectedShutdown = 1;
    a.requestsRejectedQuota = 4;
    a.requestsRejected = 7;
    TenantStats at;
    at.tenant = "beta";
    at.submitted = 5;
    at.completed = 4;
    at.rejectedQuota = 4;
    at.latencyUs.add(100);
    a.tenants.push_back(at);

    ServerStats b;
    b.requestsRejectedShed = 1;
    b.requestsRejected = 1;
    TenantStats bt1;
    bt1.tenant = "alpha";
    bt1.submitted = 1;
    bt1.completed = 1;
    bt1.latencyUs.add(50);
    TenantStats bt2;
    bt2.tenant = "beta";
    bt2.submitted = 2;
    bt2.completed = 2;
    bt2.latencyUs.add(300);
    b.tenants.push_back(bt1);
    b.tenants.push_back(bt2);

    ServerStats merged = mergeServerStats({a, b});
    EXPECT_EQ(merged.requestsRejectedShed, 3u);
    EXPECT_EQ(merged.requestsRejectedShutdown, 1u);
    EXPECT_EQ(merged.requestsRejectedQuota, 4u);
    EXPECT_EQ(merged.requestsRejected, 8u);

    ASSERT_EQ(merged.tenants.size(), 2u);
    EXPECT_EQ(merged.tenants[0].tenant, "alpha"); // sorted by name
    EXPECT_EQ(merged.tenants[1].tenant, "beta");
    EXPECT_EQ(merged.tenants[1].submitted, 7u);
    EXPECT_EQ(merged.tenants[1].completed, 6u);
    EXPECT_EQ(merged.tenants[1].rejectedQuota, 4u);
    // Latency histograms merged losslessly; percentiles recomputed.
    EXPECT_EQ(merged.tenants[1].latencyUs.count(), 2u);
    EXPECT_DOUBLE_EQ(merged.tenants[1].latencyP99Ms, 0.3);
}

TEST(Stats, MeanAndStddev)
{
    std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(Stats, MeanEmptyFatal)
{
    EXPECT_THROW(mean({}), FatalError);
}

TEST(Stats, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Stats, QuantileInterpolation)
{
    std::vector<double> xs{0, 10};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
    EXPECT_THROW(quantile(xs, 1.5), FatalError);
}

TEST(Stats, SummaryFields)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    Summary s = summarize(xs);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_EQ(s.count, 5u);
    EXPECT_GT(s.q3, s.q1);
}

TEST(Stats, PearsonPerfectCorrelation)
{
    std::vector<double> xs{1, 2, 3, 4};
    std::vector<double> ys{2, 4, 6, 8};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-9);
    std::vector<double> yneg{8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, yneg), -1.0, 1e-9);
}

TEST(Stats, PearsonConstantIsZero)
{
    std::vector<double> xs{1, 2, 3};
    std::vector<double> ys{5, 5, 5};
    EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Str, SplitJoinRoundTrip)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join(parts, ","), "a,b,,c");
}

TEST(Str, TrimAndAffixes)
{
    EXPECT_EQ(trim("  hi \n"), "hi");
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
    EXPECT_TRUE(endsWith("foobar", "bar"));
    EXPECT_FALSE(endsWith("ar", "bar"));
}

TEST(Table, AlignedOutputContainsCells)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow("beta", {2.5}, 1);
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("2.5"), std::string::npos);
    EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(Table, CsvEscapesCommas)
{
    TextTable t({"a", "b"});
    t.addRow({"x,y", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, RowWidthMismatchFatal)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, EmptyHeaderFatal)
{
    EXPECT_THROW(TextTable(std::vector<std::string>{}), FatalError);
}

} // namespace
} // namespace ccsa
