/**
 * @file
 * Tests for the dense Tensor and CSR sparse matrix.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "base/rng.hh"
#include "tensor/matmul_dispatch.hh"
#include "tensor/sparse.hh"
#include "tensor/tensor.hh"

namespace ccsa
{
namespace
{

// ------------------------------------------------------------------
// Raw-kernel harness: run one family's gemm on Tensor storage so the
// scalar and vectorized paths can both be exercised in one process,
// regardless of which family the dispatcher picked.

Tensor
runGemm(const kernels::MatmulKernels& kf, const Tensor& a,
        const Tensor& b)
{
    Tensor out(a.rows(), b.cols());
    kf.gemmAccum(a.data(), b.data(), out.data(), a.rows(), a.cols(),
                 b.cols());
    return out;
}

Tensor
runGemmTransA(const kernels::MatmulKernels& kf, const Tensor& a,
              const Tensor& g)
{
    Tensor out(a.cols(), g.cols());
    kf.gemmTransAAccum(a.data(), g.data(), out.data(), a.rows(),
                       a.cols(), g.cols());
    return out;
}

Tensor
runGemmTransB(const kernels::MatmulKernels& kf, const Tensor& a,
              const Tensor& b)
{
    Tensor out(a.rows(), b.rows());
    kf.gemmTransBAccum(a.data(), b.data(), out.data(), a.rows(),
                       a.cols(), b.rows());
    return out;
}

// Documented cross-family tolerance: AVX2 differs from scalar only
// by FMA contraction and per-panel partial sums — normal float32
// rounding, far below this bound for unit-normal operands at these
// sizes.
constexpr float kKernelTol = 1e-4f;

TEST(Tensor, ConstructionAndAccess)
{
    Tensor t(2, 3, 1.5f);
    EXPECT_EQ(t.rows(), 2);
    EXPECT_EQ(t.cols(), 3);
    EXPECT_EQ(t.size(), 6u);
    EXPECT_FLOAT_EQ(t.at(1, 2), 1.5f);
    t.at(0, 1) = 7.0f;
    EXPECT_FLOAT_EQ(t.at(0, 1), 7.0f);
}

TEST(Tensor, FromVectorChecksSize)
{
    std::vector<float> data{1, 2, 3, 4, 5, 6};
    Tensor t = Tensor::fromVector(data, 2, 3);
    EXPECT_FLOAT_EQ(t.at(1, 0), 4.0f);
    EXPECT_THROW(Tensor::fromVector(data, 2, 2), PanicError);
}

TEST(Tensor, MatmulKnownValues)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}, 2, 2);
    Tensor b = Tensor::fromVector({5, 6, 7, 8}, 2, 2);
    Tensor c = a.matmul(b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Tensor, MatmulShapeMismatchPanics)
{
    Tensor a(2, 3), b(2, 3);
    EXPECT_THROW(a.matmul(b), PanicError);
}

TEST(Tensor, BlockedKernelMatchesReferenceAcrossShapes)
{
    // The scalar kernel keeps a single ascending-order accumulator
    // per output element, so it must agree with the scalar reference
    // BITWISE — including ragged sizes that exercise the unroll tail
    // and the cache-block edges. The active kernel (possibly
    // AVX2+FMA) must agree within the documented rounding tolerance.
    Rng rng(11);
    const int shapes[][3] = {{1, 7, 5},   {3, 8, 8},   {13, 21, 9},
                             {64, 64, 64}, {65, 129, 33}, {2, 200, 1}};
    for (const auto& s : shapes) {
        Tensor a(s[0], s[1]), b(s[1], s[2]);
        a.fillNormal(rng, 0.0f, 1.0f);
        b.fillNormal(rng, 0.0f, 1.0f);
        // Sprinkle exact zeros so the reference's zero-skip branch
        // actually fires.
        a.at(0, 0) = 0.0f;
        a.at(s[0] - 1, s[1] - 1) = 0.0f;
        Tensor ref = a.matmulReference(b);
        Tensor scalar = runGemm(kernels::scalarKernels(), a, b);
        EXPECT_FLOAT_EQ(scalar.maxAbsDiff(ref), 0.0f)
            << "scalar " << s[0] << "x" << s[1] << "x" << s[2];
        Tensor active = a.matmul(b);
        EXPECT_LT(active.maxAbsDiff(ref), kKernelTol)
            << kernels::activeKernelName() << " " << s[0] << "x"
            << s[1] << "x" << s[2];
    }
}

TEST(Tensor, KernelDispatchBothFamiliesAgree)
{
    // Same-process coverage of BOTH kernel families for every matmul
    // variant: scalar is the bitwise oracle (vs the naive loops the
    // dispatch replaced), and the vectorized family must land within
    // the documented tolerance of it. When the build or CPU has no
    // SIMD family, simdKernels() aliases scalar and the comparison
    // degenerates to bitwise — still a valid run of the test.
    Rng rng(21);
    const auto& scalar = kernels::scalarKernels();
    const auto& simd = kernels::simdKernels();
    EXPECT_STREQ(scalar.name, "scalar");
    if (kernels::simdAvailable()) {
        EXPECT_STRNE(simd.name, "scalar");
    }

    const int shapes[][3] = {{1, 1, 1},   {4, 32, 16},  {5, 33, 17},
                             {7, 128, 24}, {16, 129, 48}, {3, 64, 9}};
    for (const auto& s : shapes) {
        Tensor a(s[0], s[1]), b(s[1], s[2]);
        a.fillNormal(rng, 0.0f, 1.0f);
        b.fillNormal(rng, 0.0f, 1.0f);
        EXPECT_LT(runGemm(simd, a, b).maxAbsDiff(runGemm(scalar, a, b)),
                  kKernelTol)
            << "gemm " << s[0] << "x" << s[1] << "x" << s[2];

        // transA: grad-of-weights shape a^T (k x m) * g (m x n).
        Tensor g(s[0], s[2]);
        g.fillNormal(rng, 0.0f, 1.0f);
        EXPECT_LT(runGemmTransA(simd, a, g)
                      .maxAbsDiff(runGemmTransA(scalar, a, g)),
                  kKernelTol)
            << "transA " << s[0] << "x" << s[1] << "x" << s[2];

        // transB: grad-of-inputs shape a (m x c) * b^T (c x n).
        Tensor bt(s[2], s[1]);
        bt.fillNormal(rng, 0.0f, 1.0f);
        EXPECT_LT(runGemmTransB(simd, a, bt)
                      .maxAbsDiff(runGemmTransB(scalar, a, bt)),
                  kKernelTol)
            << "transB " << s[0] << "x" << s[1] << "x" << s[2];
    }
}

TEST(Tensor, KernelDispatchRowBatchingInvariantPerFamily)
{
    // The contract serving determinism leans on: WITHIN a family,
    // each output row is bitwise-invariant to how many rows share
    // the call — for both families, checked in one process.
    Rng rng(22);
    Tensor a(9, 33), b(33, 17);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    for (const auto* kf :
         {&kernels::scalarKernels(), &kernels::simdKernels()}) {
        Tensor batched = runGemm(*kf, a, b);
        for (int i = 0; i < a.rows(); ++i) {
            Tensor row = runGemm(*kf, a.rowCopy(i), b);
            for (int j = 0; j < b.cols(); ++j)
                EXPECT_EQ(batched.at(i, j), row.at(0, j))
                    << kf->name << " row " << i << " col " << j;
        }
    }
}

TEST(Tensor, KernelDispatchHonoursScalarOverride)
{
    // The dispatcher latches its choice on first use, so this test
    // can only assert consistency with the env as this process sees
    // it — the CI forced-scalar leg runs the whole binary with
    // CCSA_MATMUL_KERNEL=scalar and lands in the first branch.
    const char* env = std::getenv("CCSA_MATMUL_KERNEL");
    if (env != nullptr && std::strcmp(env, "scalar") == 0) {
        EXPECT_STREQ(kernels::activeKernelName(), "scalar");
    } else if (kernels::simdAvailable()) {
        EXPECT_STREQ(kernels::activeKernelName(),
                     kernels::simdKernels().name);
    } else {
        EXPECT_STREQ(kernels::activeKernelName(), "scalar");
    }
}

TEST(Tensor, DegenerateShapesMatchReferenceBothFamilies)
{
    // Bugfix-sweep pin: 0-row / 0-col / 0-inner operands and row
    // counts off the 4-row block (1, 2, 3, 5...) must agree with
    // matmulReference for every variant in both families. A zero
    // dimension must leave the (possibly empty) output exactly zero
    // and, above all, not read out of bounds.
    Rng rng(23);
    const int shapes[][3] = {{0, 5, 3}, {5, 0, 3}, {5, 3, 0},
                             {0, 0, 0}, {1, 1, 1}, {2, 7, 3},
                             {3, 9, 5}, {5, 130, 11}, {6, 8, 2},
                             {7, 12, 19}};
    for (const auto* kf :
         {&kernels::scalarKernels(), &kernels::simdKernels()}) {
        for (const auto& s : shapes) {
            const int m = s[0], k = s[1], n = s[2];
            Tensor a(m, k), b(k, n);
            a.fillNormal(rng, 0.0f, 1.0f);
            b.fillNormal(rng, 0.0f, 1.0f);
            Tensor ref = a.matmulReference(b);
            EXPECT_LT(runGemm(*kf, a, b).maxAbsDiff(ref), kKernelTol)
                << kf->name << " gemm " << m << "x" << k << "x" << n;

            Tensor g(m, n);
            g.fillNormal(rng, 0.0f, 1.0f);
            Tensor taRef = a.transpose().matmulReference(g);
            EXPECT_LT(runGemmTransA(*kf, a, g).maxAbsDiff(taRef),
                      kKernelTol)
                << kf->name << " transA " << m << "x" << k << "x" << n;

            Tensor bt(n, k);
            bt.fillNormal(rng, 0.0f, 1.0f);
            Tensor tbRef = a.matmulReference(bt.transpose());
            EXPECT_LT(runGemmTransB(*kf, a, bt).maxAbsDiff(tbRef),
                      kKernelTol)
                << kf->name << " transB " << m << "x" << k << "x" << n;
        }
    }
}

TEST(Tensor, DegenerateShapesThroughTensorApi)
{
    // The same degenerate shapes through the public matmul family —
    // whatever kernel is active — so the dispatch plumbing (not just
    // the raw kernels) is covered.
    Rng rng(24);
    const int shapes[][3] = {{0, 5, 3}, {5, 0, 3}, {5, 3, 0},
                             {0, 0, 4}, {3, 9, 5}};
    for (const auto& s : shapes) {
        Tensor a(s[0], s[1]), b(s[1], s[2]);
        a.fillNormal(rng, 0.0f, 1.0f);
        b.fillNormal(rng, 0.0f, 1.0f);
        Tensor ref = a.matmulReference(b);
        EXPECT_LT(a.matmul(b).maxAbsDiff(ref), kKernelTol);

        Tensor out(s[0], s[2], 99.0f);
        a.matmulInto(b, out);
        EXPECT_LT(out.maxAbsDiff(ref), kKernelTol);

        Tensor acc(s[0], s[2], 0.0f);
        a.matmulAccumInto(b, acc);
        EXPECT_LT(acc.maxAbsDiff(ref), kKernelTol);

        Tensor g(s[0], s[2]);
        g.fillNormal(rng, 0.0f, 1.0f);
        Tensor ta(s[1], s[2], 0.0f);
        a.matmulTransAAccumInto(g, ta);
        EXPECT_LT(ta.maxAbsDiff(a.transpose().matmulReference(g)),
                  kKernelTol);

        Tensor bt(s[2], s[1]);
        bt.fillNormal(rng, 0.0f, 1.0f);
        Tensor tb(s[0], s[2], 0.0f);
        a.matmulTransBAccumInto(bt, tb);
        EXPECT_LT(tb.maxAbsDiff(a.matmulReference(bt.transpose())),
                  kKernelTol);
    }
}

TEST(Tensor, BatchedRowsMatchSingleRowMatmuls)
{
    // The property the level-batched tree-LSTM leans on: row i of a
    // batched product is bitwise the same as the 1xK gemv of row i.
    Rng rng(12);
    Tensor a(9, 33), b(33, 17);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    Tensor batched = a.matmul(b);
    for (int i = 0; i < a.rows(); ++i) {
        Tensor row = a.rowCopy(i).matmul(b);
        for (int j = 0; j < b.cols(); ++j)
            EXPECT_EQ(batched.at(i, j), row.at(0, j));
    }
}

TEST(Tensor, MatmulIntoVariants)
{
    Rng rng(13);
    Tensor a(5, 6), b(6, 4);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    Tensor expect = a.matmul(b);

    Tensor out(5, 4, 99.0f); // stale contents must be overwritten
    a.matmulInto(b, out);
    EXPECT_FLOAT_EQ(out.maxAbsDiff(expect), 0.0f);

    // Accumulation starts FROM the seed (1 + t0 + t1 + ...), which
    // legitimately reassociates against (t0 + t1 + ...) + 1.
    Tensor acc(5, 4, 1.0f);
    a.matmulAccumInto(b, acc);
    EXPECT_LT(acc.maxAbsDiff(expect + Tensor(5, 4, 1.0f)), 1e-5f);

    Tensor bad(4, 4);
    EXPECT_THROW(a.matmulInto(b, bad), PanicError);
    EXPECT_THROW(a.matmulAccumInto(b, bad), PanicError);
}

TEST(Tensor, TransposedAccumulateKernels)
{
    Rng rng(14);
    Tensor a(7, 5), g(7, 3);
    a.fillNormal(rng, 0.0f, 1.0f);
    g.fillNormal(rng, 0.0f, 1.0f);

    // out += a^T * g, no transpose materialised.
    Tensor ta(5, 3, 0.5f);
    Tensor ta_expect = ta + a.transpose().matmul(g);
    a.matmulTransAAccumInto(g, ta);
    EXPECT_LT(ta.maxAbsDiff(ta_expect), 1e-6f);

    // out += g * b^T, no transpose materialised.
    Tensor b(4, 3);
    b.fillNormal(rng, 0.0f, 1.0f);
    Tensor tb(7, 4, -0.25f);
    Tensor tb_expect = tb + g.matmul(b.transpose());
    g.matmulTransBAccumInto(b, tb);
    EXPECT_LT(tb.maxAbsDiff(tb_expect), 1e-6f);

    Tensor bad(1, 1);
    EXPECT_THROW(a.matmulTransAAccumInto(g, bad), PanicError);
    EXPECT_THROW(g.matmulTransBAccumInto(b, bad), PanicError);
}

TEST(Tensor, MatmulIdentity)
{
    Rng rng(4);
    Tensor a(3, 3);
    a.fillNormal(rng, 0.0f, 1.0f);
    Tensor eye(3, 3);
    for (int i = 0; i < 3; ++i)
        eye.at(i, i) = 1.0f;
    EXPECT_LT(a.matmul(eye).maxAbsDiff(a), 1e-6f);
}

TEST(Tensor, TransposeInvolution)
{
    Rng rng(5);
    Tensor a(2, 5);
    a.fillUniform(rng, -1.0f, 1.0f);
    EXPECT_LT(a.transpose().transpose().maxAbsDiff(a), 1e-7f);
    EXPECT_EQ(a.transpose().rows(), 5);
}

TEST(Tensor, ElementwiseOps)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}, 2, 2);
    Tensor b = Tensor::fromVector({4, 3, 2, 1}, 2, 2);
    EXPECT_FLOAT_EQ((a + b).at(0, 0), 5.0f);
    EXPECT_FLOAT_EQ((a - b).at(1, 1), 3.0f);
    EXPECT_FLOAT_EQ((a * b).at(0, 1), 6.0f);
    EXPECT_FLOAT_EQ((a * 2.0f).at(1, 0), 6.0f);
    Tensor c = a;
    c += b;
    EXPECT_FLOAT_EQ(c.at(0, 0), 5.0f);
    c -= b;
    EXPECT_LT(c.maxAbsDiff(a), 1e-7f);
}

TEST(Tensor, ShapeMismatchPanics)
{
    Tensor a(2, 2), b(2, 3);
    EXPECT_THROW(a + b, PanicError);
    EXPECT_THROW(a - b, PanicError);
    EXPECT_THROW(a * b, PanicError);
}

TEST(Tensor, RowBroadcastAndSumRows)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}, 2, 2);
    Tensor bias = Tensor::fromVector({10, 20}, 1, 2);
    Tensor c = a.addRowBroadcast(bias);
    EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 24.0f);
    Tensor s = a.sumRows();
    EXPECT_FLOAT_EQ(s.at(0, 0), 4.0f);
    EXPECT_FLOAT_EQ(s.at(0, 1), 6.0f);
    EXPECT_FLOAT_EQ(a.sumAll(), 10.0f);
    EXPECT_FLOAT_EQ(a.meanAll(), 2.5f);
}

TEST(Tensor, RowCopySetRow)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}, 2, 2);
    Tensor r = a.rowCopy(1);
    EXPECT_FLOAT_EQ(r.at(0, 0), 3.0f);
    a.setRow(0, r);
    EXPECT_FLOAT_EQ(a.at(0, 1), 4.0f);
    EXPECT_THROW(a.rowCopy(5), PanicError);
}

TEST(Tensor, ConcatCols)
{
    Tensor a = Tensor::fromVector({1, 2}, 2, 1);
    Tensor b = Tensor::fromVector({3, 4, 5, 6}, 2, 2);
    Tensor c = concatCols(a, b);
    EXPECT_EQ(c.cols(), 3);
    EXPECT_FLOAT_EQ(c.at(1, 0), 2.0f);
    EXPECT_FLOAT_EQ(c.at(1, 2), 6.0f);
}

TEST(Tensor, BorrowedStorageAliasesWithoutOwning)
{
    float storage[6] = {1, 2, 3, 4, 5, 6};
    Tensor t = Tensor::borrowed(storage, 2, 3);
    EXPECT_TRUE(t.isBorrowed());
    EXPECT_EQ(t.data(), storage);
    EXPECT_FLOAT_EQ(t.at(1, 2), 6.0f);

    // Writes through the Tensor land in the caller's storage...
    t.at(0, 1) = 42.0f;
    EXPECT_FLOAT_EQ(storage[1], 42.0f);

    // ...and copies of a borrowed Tensor alias the same storage (the
    // arena fast path: no heap traffic on copy).
    const std::uint64_t before = tensorHeapAllocCount();
    Tensor alias = t;
    EXPECT_EQ(tensorHeapAllocCount(), before);
    EXPECT_TRUE(alias.isBorrowed());
    EXPECT_EQ(alias.data(), storage);

    // Empty borrow is fine; null storage with elements is not.
    Tensor empty = Tensor::borrowed(nullptr, 0, 0);
    EXPECT_TRUE(empty.empty());
    EXPECT_THROW(Tensor::borrowed(nullptr, 1, 1), PanicError);
}

TEST(Tensor, ToOwnedDetachesFromBorrowedStorage)
{
    float storage[4] = {1, 2, 3, 4};
    Tensor t = Tensor::borrowed(storage, 2, 2);
    Tensor owned = t.toOwned();
    EXPECT_FALSE(owned.isBorrowed());
    EXPECT_FLOAT_EQ(owned.maxAbsDiff(t), 0.0f);

    // The copy must be deep: clobbering the arena-side storage (as a
    // scope reset would) leaves the owned Tensor untouched.
    storage[0] = -99.0f;
    EXPECT_FLOAT_EQ(owned.at(0, 0), 1.0f);

    // toOwned on an already-owned Tensor is a plain deep copy.
    Tensor owned2 = owned.toOwned();
    EXPECT_FALSE(owned2.isBorrowed());
    EXPECT_NE(owned2.data(), owned.data());
}

TEST(Tensor, HeapAllocCountTracksOwnedConstruction)
{
    const std::uint64_t before = tensorHeapAllocCount();
    Tensor a(3, 4);
    EXPECT_EQ(tensorHeapAllocCount(), before + 1);
    Tensor b = a; // owned copy allocates
    EXPECT_EQ(tensorHeapAllocCount(), before + 2);
    Tensor c = std::move(a); // move does not
    EXPECT_EQ(tensorHeapAllocCount(), before + 2);
    Tensor d(0, 0); // empty does not
    EXPECT_EQ(tensorHeapAllocCount(), before + 2);
    (void)b;
    (void)c;
    (void)d;
}

TEST(Tensor, AtBoundsCheckedInDebugBuilds)
{
    // CCSA_DCHECK compiles out under NDEBUG (the Release hot path
    // stays branch-free); in debug and sanitizer builds an
    // out-of-bounds at() must panic instead of reading garbage.
    Tensor t(2, 3);
#ifndef NDEBUG
    EXPECT_THROW(t.at(2, 0), PanicError);
    EXPECT_THROW(t.at(0, 3), PanicError);
    EXPECT_THROW(t.at(-1, 0), PanicError);
    const Tensor& ct = t;
    EXPECT_THROW(ct.at(0, -1), PanicError);
#else
    EXPECT_NO_THROW(t.at(1, 2));
#endif
}

TEST(Sparse, FromCooAndDense)
{
    auto m = CsrMatrix::fromCoo(
        2, 3, {{0, 1, 2.0f}, {1, 2, 3.0f}, {0, 1, 0.5f}});
    EXPECT_EQ(m.rows(), 2);
    EXPECT_EQ(m.cols(), 3);
    // Duplicates merged.
    EXPECT_EQ(m.nnz(), 2u);
    Tensor d = m.toDense();
    EXPECT_FLOAT_EQ(d.at(0, 1), 2.5f);
    EXPECT_FLOAT_EQ(d.at(1, 2), 3.0f);
}

TEST(Sparse, MultiplyMatchesDense)
{
    Rng rng(6);
    std::vector<CooEntry> entries;
    for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 5; ++j)
            if (rng.bernoulli(0.4))
                entries.push_back(
                    {i, j, static_cast<float>(rng.uniform(-1, 1))});
    auto m = CsrMatrix::fromCoo(5, 5, entries);
    Tensor x(5, 3);
    x.fillNormal(rng, 0.0f, 1.0f);
    Tensor got = m.multiply(x);
    Tensor expected = m.toDense().matmul(x);
    EXPECT_LT(got.maxAbsDiff(expected), 1e-5f);

    Tensor y(5, 2);
    y.fillNormal(rng, 0.0f, 1.0f);
    Tensor got_t = m.transposeMultiply(y);
    Tensor expected_t = m.toDense().transpose().matmul(y);
    EXPECT_LT(got_t.maxAbsDiff(expected_t), 1e-5f);
}

TEST(Sparse, OutOfBoundsPanics)
{
    EXPECT_THROW(CsrMatrix::fromCoo(2, 2, {{2, 0, 1.0f}}), PanicError);
}

} // namespace
} // namespace ccsa
