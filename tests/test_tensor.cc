/**
 * @file
 * Tests for the dense Tensor and CSR sparse matrix.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "tensor/sparse.hh"
#include "tensor/tensor.hh"

namespace ccsa
{
namespace
{

TEST(Tensor, ConstructionAndAccess)
{
    Tensor t(2, 3, 1.5f);
    EXPECT_EQ(t.rows(), 2);
    EXPECT_EQ(t.cols(), 3);
    EXPECT_EQ(t.size(), 6u);
    EXPECT_FLOAT_EQ(t.at(1, 2), 1.5f);
    t.at(0, 1) = 7.0f;
    EXPECT_FLOAT_EQ(t.at(0, 1), 7.0f);
}

TEST(Tensor, FromVectorChecksSize)
{
    std::vector<float> data{1, 2, 3, 4, 5, 6};
    Tensor t = Tensor::fromVector(data, 2, 3);
    EXPECT_FLOAT_EQ(t.at(1, 0), 4.0f);
    EXPECT_THROW(Tensor::fromVector(data, 2, 2), PanicError);
}

TEST(Tensor, MatmulKnownValues)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}, 2, 2);
    Tensor b = Tensor::fromVector({5, 6, 7, 8}, 2, 2);
    Tensor c = a.matmul(b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Tensor, MatmulShapeMismatchPanics)
{
    Tensor a(2, 3), b(2, 3);
    EXPECT_THROW(a.matmul(b), PanicError);
}

TEST(Tensor, BlockedKernelMatchesReferenceAcrossShapes)
{
    // The blocked/unrolled kernel keeps a single ascending-order
    // accumulator per output element, so it must agree with the
    // scalar reference bitwise — including ragged sizes that
    // exercise the unroll tail and the cache-block edges.
    Rng rng(11);
    const int shapes[][3] = {{1, 7, 5},   {3, 8, 8},   {13, 21, 9},
                             {64, 64, 64}, {65, 129, 33}, {2, 200, 1}};
    for (const auto& s : shapes) {
        Tensor a(s[0], s[1]), b(s[1], s[2]);
        a.fillNormal(rng, 0.0f, 1.0f);
        b.fillNormal(rng, 0.0f, 1.0f);
        // Sprinkle exact zeros so the reference's zero-skip branch
        // actually fires.
        a.at(0, 0) = 0.0f;
        a.at(s[0] - 1, s[1] - 1) = 0.0f;
        Tensor fast = a.matmul(b);
        Tensor ref = a.matmulReference(b);
        EXPECT_FLOAT_EQ(fast.maxAbsDiff(ref), 0.0f)
            << s[0] << "x" << s[1] << "x" << s[2];
    }
}

TEST(Tensor, BatchedRowsMatchSingleRowMatmuls)
{
    // The property the level-batched tree-LSTM leans on: row i of a
    // batched product is bitwise the same as the 1xK gemv of row i.
    Rng rng(12);
    Tensor a(9, 33), b(33, 17);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    Tensor batched = a.matmul(b);
    for (int i = 0; i < a.rows(); ++i) {
        Tensor row = a.rowCopy(i).matmul(b);
        for (int j = 0; j < b.cols(); ++j)
            EXPECT_EQ(batched.at(i, j), row.at(0, j));
    }
}

TEST(Tensor, MatmulIntoVariants)
{
    Rng rng(13);
    Tensor a(5, 6), b(6, 4);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    Tensor expect = a.matmul(b);

    Tensor out(5, 4, 99.0f); // stale contents must be overwritten
    a.matmulInto(b, out);
    EXPECT_FLOAT_EQ(out.maxAbsDiff(expect), 0.0f);

    // Accumulation starts FROM the seed (1 + t0 + t1 + ...), which
    // legitimately reassociates against (t0 + t1 + ...) + 1.
    Tensor acc(5, 4, 1.0f);
    a.matmulAccumInto(b, acc);
    EXPECT_LT(acc.maxAbsDiff(expect + Tensor(5, 4, 1.0f)), 1e-5f);

    Tensor bad(4, 4);
    EXPECT_THROW(a.matmulInto(b, bad), PanicError);
    EXPECT_THROW(a.matmulAccumInto(b, bad), PanicError);
}

TEST(Tensor, TransposedAccumulateKernels)
{
    Rng rng(14);
    Tensor a(7, 5), g(7, 3);
    a.fillNormal(rng, 0.0f, 1.0f);
    g.fillNormal(rng, 0.0f, 1.0f);

    // out += a^T * g, no transpose materialised.
    Tensor ta(5, 3, 0.5f);
    Tensor ta_expect = ta + a.transpose().matmul(g);
    a.matmulTransAAccumInto(g, ta);
    EXPECT_LT(ta.maxAbsDiff(ta_expect), 1e-6f);

    // out += g * b^T, no transpose materialised.
    Tensor b(4, 3);
    b.fillNormal(rng, 0.0f, 1.0f);
    Tensor tb(7, 4, -0.25f);
    Tensor tb_expect = tb + g.matmul(b.transpose());
    g.matmulTransBAccumInto(b, tb);
    EXPECT_LT(tb.maxAbsDiff(tb_expect), 1e-6f);

    Tensor bad(1, 1);
    EXPECT_THROW(a.matmulTransAAccumInto(g, bad), PanicError);
    EXPECT_THROW(g.matmulTransBAccumInto(b, bad), PanicError);
}

TEST(Tensor, MatmulIdentity)
{
    Rng rng(4);
    Tensor a(3, 3);
    a.fillNormal(rng, 0.0f, 1.0f);
    Tensor eye(3, 3);
    for (int i = 0; i < 3; ++i)
        eye.at(i, i) = 1.0f;
    EXPECT_LT(a.matmul(eye).maxAbsDiff(a), 1e-6f);
}

TEST(Tensor, TransposeInvolution)
{
    Rng rng(5);
    Tensor a(2, 5);
    a.fillUniform(rng, -1.0f, 1.0f);
    EXPECT_LT(a.transpose().transpose().maxAbsDiff(a), 1e-7f);
    EXPECT_EQ(a.transpose().rows(), 5);
}

TEST(Tensor, ElementwiseOps)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}, 2, 2);
    Tensor b = Tensor::fromVector({4, 3, 2, 1}, 2, 2);
    EXPECT_FLOAT_EQ((a + b).at(0, 0), 5.0f);
    EXPECT_FLOAT_EQ((a - b).at(1, 1), 3.0f);
    EXPECT_FLOAT_EQ((a * b).at(0, 1), 6.0f);
    EXPECT_FLOAT_EQ((a * 2.0f).at(1, 0), 6.0f);
    Tensor c = a;
    c += b;
    EXPECT_FLOAT_EQ(c.at(0, 0), 5.0f);
    c -= b;
    EXPECT_LT(c.maxAbsDiff(a), 1e-7f);
}

TEST(Tensor, ShapeMismatchPanics)
{
    Tensor a(2, 2), b(2, 3);
    EXPECT_THROW(a + b, PanicError);
    EXPECT_THROW(a - b, PanicError);
    EXPECT_THROW(a * b, PanicError);
}

TEST(Tensor, RowBroadcastAndSumRows)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}, 2, 2);
    Tensor bias = Tensor::fromVector({10, 20}, 1, 2);
    Tensor c = a.addRowBroadcast(bias);
    EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 24.0f);
    Tensor s = a.sumRows();
    EXPECT_FLOAT_EQ(s.at(0, 0), 4.0f);
    EXPECT_FLOAT_EQ(s.at(0, 1), 6.0f);
    EXPECT_FLOAT_EQ(a.sumAll(), 10.0f);
    EXPECT_FLOAT_EQ(a.meanAll(), 2.5f);
}

TEST(Tensor, RowCopySetRow)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}, 2, 2);
    Tensor r = a.rowCopy(1);
    EXPECT_FLOAT_EQ(r.at(0, 0), 3.0f);
    a.setRow(0, r);
    EXPECT_FLOAT_EQ(a.at(0, 1), 4.0f);
    EXPECT_THROW(a.rowCopy(5), PanicError);
}

TEST(Tensor, ConcatCols)
{
    Tensor a = Tensor::fromVector({1, 2}, 2, 1);
    Tensor b = Tensor::fromVector({3, 4, 5, 6}, 2, 2);
    Tensor c = concatCols(a, b);
    EXPECT_EQ(c.cols(), 3);
    EXPECT_FLOAT_EQ(c.at(1, 0), 2.0f);
    EXPECT_FLOAT_EQ(c.at(1, 2), 6.0f);
}

TEST(Sparse, FromCooAndDense)
{
    auto m = CsrMatrix::fromCoo(
        2, 3, {{0, 1, 2.0f}, {1, 2, 3.0f}, {0, 1, 0.5f}});
    EXPECT_EQ(m.rows(), 2);
    EXPECT_EQ(m.cols(), 3);
    // Duplicates merged.
    EXPECT_EQ(m.nnz(), 2u);
    Tensor d = m.toDense();
    EXPECT_FLOAT_EQ(d.at(0, 1), 2.5f);
    EXPECT_FLOAT_EQ(d.at(1, 2), 3.0f);
}

TEST(Sparse, MultiplyMatchesDense)
{
    Rng rng(6);
    std::vector<CooEntry> entries;
    for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 5; ++j)
            if (rng.bernoulli(0.4))
                entries.push_back(
                    {i, j, static_cast<float>(rng.uniform(-1, 1))});
    auto m = CsrMatrix::fromCoo(5, 5, entries);
    Tensor x(5, 3);
    x.fillNormal(rng, 0.0f, 1.0f);
    Tensor got = m.multiply(x);
    Tensor expected = m.toDense().matmul(x);
    EXPECT_LT(got.maxAbsDiff(expected), 1e-5f);

    Tensor y(5, 2);
    y.fillNormal(rng, 0.0f, 1.0f);
    Tensor got_t = m.transposeMultiply(y);
    Tensor expected_t = m.toDense().transpose().matmul(y);
    EXPECT_LT(got_t.maxAbsDiff(expected_t), 1e-5f);
}

TEST(Sparse, OutOfBoundsPanics)
{
    EXPECT_THROW(CsrMatrix::fromCoo(2, 2, {{2, 0, 1.0f}}), PanicError);
}

} // namespace
} // namespace ccsa
