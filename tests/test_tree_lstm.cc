/**
 * @file
 * Tests for the sequential LSTM cell, the child-sum tree-LSTM cell,
 * and the three multi-layer tree drivers of Fig. 2.
 */

#include <gtest/gtest.h>

#include "gradcheck.hh"
#include "nn/tree_lstm.hh"

namespace ccsa
{
namespace
{

using testutil::expectGradientsMatch;
using testutil::patterned;

TEST(TreeSpec, FromParentsBuildsOrders)
{
    //      0
    //     / |
    //    1   2
    //   /
    //  3
    nn::TreeSpec spec = nn::TreeSpec::fromParents({-1, 0, 0, 1});
    EXPECT_EQ(spec.root, 0);
    EXPECT_EQ(spec.children[0], (std::vector<int>{1, 2}));
    EXPECT_EQ(spec.children[1], (std::vector<int>{3}));
    ASSERT_EQ(spec.postOrder.size(), 4u);
    // Children precede parents.
    std::vector<int> pos(4);
    for (int i = 0; i < 4; ++i)
        pos[spec.postOrder[i]] = i;
    EXPECT_LT(pos[3], pos[1]);
    EXPECT_LT(pos[1], pos[0]);
    EXPECT_LT(pos[2], pos[0]);
}

TEST(TreeSpec, RejectsForests)
{
    EXPECT_THROW(nn::TreeSpec::fromParents({-1, -1}), FatalError);
    EXPECT_THROW(nn::TreeSpec::fromParents({0, 0}), FatalError);
    EXPECT_THROW(nn::TreeSpec::fromParents({}), FatalError);
    EXPECT_THROW(nn::TreeSpec::fromParents({-1, 5}), FatalError);
}

TEST(LstmCell, StepShapesAndRange)
{
    Rng rng(1);
    nn::LstmCell cell(3, 5, rng);
    ag::Var x = ag::constant(patterned(1, 3, 0.5f));
    auto state = cell.step(x, cell.zeroState());
    EXPECT_EQ(state.h.value().cols(), 5);
    EXPECT_EQ(state.c.value().cols(), 5);
    for (int j = 0; j < 5; ++j) {
        EXPECT_LT(std::fabs(state.h.value().at(0, j)), 1.0f);
    }
}

TEST(LstmCell, SequenceOrderMatters)
{
    Rng rng(2);
    nn::LstmCell cell(2, 4, rng);
    std::vector<ag::Var> ab{ag::constant(patterned(1, 2, 0.9f)),
                            ag::constant(patterned(1, 2, 0.9f, 2.f))};
    std::vector<ag::Var> ba{ab[1], ab[0]};
    Tensor h_ab = cell.runSequence(ab).h.value();
    Tensor h_ba = cell.runSequence(ba).h.value();
    EXPECT_GT(h_ab.maxAbsDiff(h_ba), 1e-5f);
}

TEST(LstmCell, GradientsFlowThroughSequence)
{
    Rng rng(3);
    nn::LstmCell cell(2, 3, rng);
    std::vector<ag::Var> leaves{ag::leaf(patterned(1, 2, 0.6f)),
                                ag::leaf(patterned(1, 2, 0.6f, 1.f))};
    expectGradientsMatch(leaves, [&] {
        auto st = cell.runSequence({leaves[0], leaves[1]});
        return ag::sumAllOp(st.h);
    }, 1e-2f, 3e-2f);
}

TEST(ChildSumCell, LeafComposesFromInputOnly)
{
    Rng rng(4);
    nn::ChildSumTreeLstmCell cell(3, 4, rng);
    ag::Var x = ag::constant(patterned(1, 3, 0.5f));
    auto st = cell.compose(x, {}, {});
    EXPECT_EQ(st.h.value().cols(), 4);
}

TEST(ChildSumCell, ChildOrderInvariance)
{
    // Child-sum aggregation must be permutation invariant (Eq. 4
    // sums child hidden states).
    Rng rng(5);
    nn::ChildSumTreeLstmCell cell(3, 4, rng);
    ag::Var x = ag::constant(patterned(1, 3, 0.5f));
    auto a = cell.compose(x, {}, {});
    ag::Var x2 = ag::constant(patterned(1, 3, 0.5f, 1.0f));
    auto b = cell.compose(x2, {}, {});

    auto ab = cell.compose(x, {a.h, b.h}, {a.c, b.c});
    auto ba = cell.compose(x, {b.h, a.h}, {b.c, a.c});
    EXPECT_LT(ab.h.value().maxAbsDiff(ba.h.value()), 1e-6f);
}

TEST(ChildSumCell, MismatchedChildStatesPanics)
{
    Rng rng(6);
    nn::ChildSumTreeLstmCell cell(2, 3, rng);
    ag::Var x = ag::constant(patterned(1, 2, 0.5f));
    auto st = cell.compose(x, {}, {});
    EXPECT_THROW(cell.compose(x, {st.h}, {}), PanicError);
}

TEST(ChildSumCell, GradientsThroughTree)
{
    Rng rng(7);
    nn::ChildSumTreeLstmCell cell(2, 3, rng);
    std::vector<ag::Var> leaves{ag::leaf(patterned(1, 2, 0.5f)),
                                ag::leaf(patterned(1, 2, 0.5f, 1.f)),
                                ag::leaf(patterned(1, 2, 0.5f, 2.f))};
    expectGradientsMatch(leaves, [&] {
        auto c1 = cell.compose(leaves[0], {}, {});
        auto c2 = cell.compose(leaves[1], {}, {});
        auto root = cell.compose(leaves[2], {c1.h, c2.h},
                                 {c1.c, c2.c});
        return ag::sumAllOp(root.h);
    }, 1e-2f, 3e-2f);
}

class TreeLstmArchTest
    : public ::testing::TestWithParam<std::tuple<nn::TreeArch, int>>
{
};

TEST_P(TreeLstmArchTest, EncodesAndBackpropagates)
{
    auto [arch, layers] = GetParam();
    Rng rng(8);
    nn::TreeLstm lstm(3, 4, layers, arch, rng);

    nn::TreeSpec spec = nn::TreeSpec::fromParents({-1, 0, 0, 1, 1});
    std::vector<ag::Var> inputs;
    for (int i = 0; i < 5; ++i)
        inputs.push_back(
            ag::constant(patterned(1, 3, 0.4f,
                                   static_cast<float>(i))));

    ag::Var root = lstm.encodeRoot(spec, inputs);
    int expected = arch == nn::TreeArch::Bi ? 8 : 4;
    EXPECT_EQ(root.value().cols(), expected);
    EXPECT_EQ(lstm.outputDim(), expected);

    // Backward reaches the parameters.
    ag::backward(ag::sumAllOp(root));
    double grad_norm = 0.0;
    for (auto* p : lstm.parameters())
        grad_norm += p->var.grad().normSq();
    EXPECT_GT(grad_norm, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, TreeLstmArchTest,
    ::testing::Combine(
        ::testing::Values(nn::TreeArch::Uni, nn::TreeArch::Bi,
                          nn::TreeArch::Alternating),
        ::testing::Values(1, 2, 3)));

TEST(TreeLstm, StructureChangesRepresentation)
{
    Rng rng(9);
    nn::TreeLstm lstm(2, 4, 1, nn::TreeArch::Uni, rng);
    std::vector<ag::Var> inputs;
    for (int i = 0; i < 4; ++i)
        inputs.push_back(
            ag::constant(patterned(1, 2, 0.5f,
                                   static_cast<float>(i))));
    // Same inputs, different shapes: chain vs star.
    nn::TreeSpec chain = nn::TreeSpec::fromParents({-1, 0, 1, 2});
    nn::TreeSpec star = nn::TreeSpec::fromParents({-1, 0, 0, 0});
    Tensor h_chain = lstm.encodeRoot(chain, inputs).value();
    Tensor h_star = lstm.encodeRoot(star, inputs).value();
    EXPECT_GT(h_chain.maxAbsDiff(h_star), 1e-5f);
}

TEST(TreeLstm, InputCountMismatchFatal)
{
    Rng rng(10);
    nn::TreeLstm lstm(2, 3, 1, nn::TreeArch::Uni, rng);
    nn::TreeSpec spec = nn::TreeSpec::fromParents({-1, 0});
    EXPECT_THROW(lstm.encodeNodes(spec, {}), FatalError);
}

TEST(TreeLstm, ParameterCountsPerArch)
{
    Rng rng(11);
    // Per cell: 4 gates x (W in x h + U h x h + b h).
    auto cell_params = [](int in, int h) {
        return 4 * (in * h + h * h + h);
    };
    nn::TreeLstm uni(3, 4, 2, nn::TreeArch::Uni, rng);
    EXPECT_EQ(uni.parameterCount(),
              static_cast<std::size_t>(cell_params(3, 4) +
                                       cell_params(4, 4)));
    nn::TreeLstm bi(3, 4, 2, nn::TreeArch::Bi, rng);
    EXPECT_EQ(bi.parameterCount(),
              static_cast<std::size_t>(2 * cell_params(3, 4) +
                                       2 * cell_params(8, 4)));
    // Alternating halves the bi-directional parameter count
    // (paper §IV-C).
    nn::TreeLstm alt(3, 4, 2, nn::TreeArch::Alternating, rng);
    EXPECT_EQ(alt.parameterCount(), uni.parameterCount());
}

TEST(TreeArch, Names)
{
    EXPECT_STREQ(treeArchName(nn::TreeArch::Uni), "uni-directional");
    EXPECT_STREQ(treeArchName(nn::TreeArch::Bi), "bi-directional");
    EXPECT_STREQ(treeArchName(nn::TreeArch::Alternating),
                 "alternating");
}

// ----------------------------------------- level-batched wavefronts

/**
 * Forward-parity tolerance between the level-batched path and the
 * per-node oracle. The blocked matmul kernel accumulates each output
 * element in the same ascending order whether a row is computed alone
 * or inside a level batch, and the segment sums replay addN's
 * accumulation order, so in practice the two paths are
 * bitwise-identical; the tolerance is headroom for platforms whose
 * compilers reassociate differently.
 */
constexpr float kLevelBatchTol = 1e-6f;

/** Gradient-parity tolerance: backward accumulates the same
 * contributions in a different order across the two tapes. */
constexpr float kLevelBatchGradTol = 1e-4f;

std::vector<std::vector<int>>
parityTreeShapes()
{
    return {
        {-1, 0, 1, 2, 3, 4, 5, 6},                    // deep chain
        {-1, 0, 0, 0, 0, 0, 0},                       // star
        {-1, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5},        // bushy
        {-1, 0, 1, 1, 0, 4, 4, 6, 6, 6},              // ragged
        {-1},                                         // single node
    };
}

TEST(TreeSpec, LevelSchedulesPartitionNodesByHeightAndDepth)
{
    //      0
    //     / |
    //    1   2
    //   3 4   (children of 1)
    nn::TreeSpec spec = nn::TreeSpec::fromParents({-1, 0, 0, 1, 1});

    // Upward: leaves {2,3,4} at level 0, then {1}, then {0}.
    ASSERT_EQ(spec.upSchedule.depth(), 3u);
    EXPECT_EQ(spec.upSchedule.levels[0], (std::vector<int>{2, 3, 4}));
    EXPECT_EQ(spec.upSchedule.levels[1], (std::vector<int>{1}));
    EXPECT_EQ(spec.upSchedule.levels[2], (std::vector<int>{0}));
    // Level 1's dependencies are node 1's children, in child order.
    EXPECT_EQ(spec.upSchedule.depIds[1], (std::vector<int>{3, 4}));
    EXPECT_EQ(spec.upSchedule.depOffsets[1],
              (std::vector<int>{0, 2}));
    // Leaves have no dependencies: offsets all zero.
    EXPECT_EQ(spec.upSchedule.depOffsets[0],
              (std::vector<int>{0, 0, 0, 0}));

    // Downward: root first, then {1,2}, then {3,4}; the single
    // dependency is the parent.
    ASSERT_EQ(spec.downSchedule.depth(), 3u);
    EXPECT_EQ(spec.downSchedule.levels[0], (std::vector<int>{0}));
    EXPECT_EQ(spec.downSchedule.levels[1], (std::vector<int>{1, 2}));
    EXPECT_EQ(spec.downSchedule.levels[2], (std::vector<int>{3, 4}));
    EXPECT_EQ(spec.downSchedule.depIds[2], (std::vector<int>{1, 1}));
}

TEST(ChildSumCell, ComposeLevelMatchesComposePerNode)
{
    Rng rng(21);
    nn::ChildSumTreeLstmCell cell(3, 4, rng);
    // Three nodes: two children, none, one child.
    std::vector<ag::Var> xs{
        ag::constant(patterned(1, 3, 0.5f)),
        ag::constant(patterned(1, 3, 0.5f, 1.f)),
        ag::constant(patterned(1, 3, 0.5f, 2.f))};
    std::vector<ag::Var> kid_h, kid_c;
    for (int k = 0; k < 3; ++k) {
        auto st = cell.compose(
            ag::constant(patterned(1, 3, 0.3f,
                                   static_cast<float>(k))), {}, {});
        kid_h.push_back(st.h);
        kid_c.push_back(st.c);
    }

    auto a = cell.compose(xs[0], {kid_h[0], kid_h[1]},
                          {kid_c[0], kid_c[1]});
    auto b = cell.compose(xs[1], {}, {});
    auto c = cell.compose(xs[2], {kid_h[2]}, {kid_c[2]});

    auto level = cell.composeLevel(
        ag::stackRows(xs),
        ag::stackRows({kid_h[0], kid_h[1], kid_h[2]}),
        ag::stackRows({kid_c[0], kid_c[1], kid_c[2]}),
        {0, 2, 2, 3});
    ASSERT_EQ(level.h.value().rows(), 3);
    EXPECT_LE(ag::rowSlice(level.h, 0, 1).value().maxAbsDiff(
                  a.h.value()), kLevelBatchTol);
    EXPECT_LE(ag::rowSlice(level.h, 1, 1).value().maxAbsDiff(
                  b.h.value()), kLevelBatchTol);
    EXPECT_LE(ag::rowSlice(level.h, 2, 1).value().maxAbsDiff(
                  c.h.value()), kLevelBatchTol);
    EXPECT_LE(ag::rowSlice(level.c, 0, 1).value().maxAbsDiff(
                  a.c.value()), kLevelBatchTol);
    EXPECT_LE(ag::rowSlice(level.c, 2, 1).value().maxAbsDiff(
                  c.c.value()), kLevelBatchTol);
}

class LevelBatchParityTest
    : public ::testing::TestWithParam<std::tuple<nn::TreeArch, int>>
{
};

TEST_P(LevelBatchParityTest, ForwardMatchesPerNodeOracle)
{
    auto [arch, layers] = GetParam();
    Rng rng(22);
    nn::TreeLstm lstm(3, 4, layers, arch, rng);

    for (const auto& parents : parityTreeShapes()) {
        nn::TreeSpec spec = nn::TreeSpec::fromParents(parents);
        std::vector<ag::Var> inputs;
        for (std::size_t i = 0; i < spec.size(); ++i)
            inputs.push_back(ag::constant(
                patterned(1, 3, 0.4f, static_cast<float>(i))));

        auto batched = lstm.encodeNodes(spec, inputs);
        auto oracle = lstm.encodeNodesPerNode(spec, inputs);
        ASSERT_EQ(batched.size(), oracle.size());
        for (std::size_t i = 0; i < batched.size(); ++i)
            EXPECT_LE(batched[i].value().maxAbsDiff(
                          oracle[i].value()), kLevelBatchTol)
                << "tree size " << spec.size() << " node " << i;
    }
}

TEST_P(LevelBatchParityTest, ParameterGradientsMatchPerNodeOracle)
{
    auto [arch, layers] = GetParam();
    Rng rng(23);
    nn::TreeLstm lstm(3, 4, layers, arch, rng);
    nn::TreeSpec spec = nn::TreeSpec::fromParents(
        {-1, 0, 0, 1, 1, 2, 2, 3, 3, 4});
    std::vector<ag::Var> inputs;
    for (std::size_t i = 0; i < spec.size(); ++i)
        inputs.push_back(ag::constant(
            patterned(1, 3, 0.4f, static_cast<float>(i))));

    auto run = [&](bool batched) {
        lstm.zeroGrad();
        auto hs = batched ? lstm.encodeNodes(spec, inputs)
                          : lstm.encodeNodesPerNode(spec, inputs);
        ag::backward(ag::sumAllOp(ag::addN(hs)));
        std::vector<Tensor> grads;
        for (auto* p : lstm.parameters())
            grads.push_back(p->var.grad());
        return grads;
    };

    auto g_batched = run(true);
    auto g_oracle = run(false);
    ASSERT_EQ(g_batched.size(), g_oracle.size());
    double total = 0.0;
    for (std::size_t p = 0; p < g_batched.size(); ++p) {
        EXPECT_LE(g_batched[p].maxAbsDiff(g_oracle[p]),
                  kLevelBatchGradTol)
            << "parameter " << p;
        total += g_batched[p].normSq();
    }
    EXPECT_GT(total, 0.0); // the comparison is not vacuous
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, LevelBatchParityTest,
    ::testing::Combine(
        ::testing::Values(nn::TreeArch::Uni, nn::TreeArch::Bi,
                          nn::TreeArch::Alternating),
        ::testing::Values(1, 2, 3)));

TEST(TreeLstm, BatchedPathPassesGradcheckAgainstFiniteDifferences)
{
    // Trainer-style gradcheck through the level-batched tape:
    // analytic input gradients vs central finite differences.
    Rng rng(24);
    nn::TreeLstm lstm(2, 3, 2, nn::TreeArch::Alternating, rng);
    nn::TreeSpec spec = nn::TreeSpec::fromParents({-1, 0, 0, 1, 1});
    std::vector<ag::Var> leaves;
    for (int i = 0; i < 5; ++i)
        leaves.push_back(ag::leaf(
            patterned(1, 2, 0.5f, static_cast<float>(i))));
    expectGradientsMatch(leaves, [&] {
        auto hs = lstm.encodeNodes(spec, leaves);
        return ag::sumAllOp(ag::addN(hs));
    }, 1e-2f, 3e-2f);
}

TEST(TreeLstm, ForestEncodingMatchesPerTreeEncoding)
{
    Rng rng(25);
    nn::TreeLstm lstm(3, 4, 2, nn::TreeArch::Bi, rng);

    std::vector<nn::TreeSpec> specs;
    specs.push_back(nn::TreeSpec::fromParents({-1, 0, 1, 2}));
    specs.push_back(nn::TreeSpec::fromParents({-1}));
    specs.push_back(
        nn::TreeSpec::fromParents({-1, 0, 0, 1, 1, 2, 2}));

    std::vector<std::vector<ag::Var>> inputs(specs.size());
    std::vector<ag::Var> all_rows;
    for (std::size_t t = 0; t < specs.size(); ++t) {
        for (std::size_t i = 0; i < specs[t].size(); ++i) {
            inputs[t].push_back(ag::constant(patterned(
                1, 3, 0.4f, static_cast<float>(10 * t + i))));
            all_rows.push_back(inputs[t].back());
        }
    }

    auto forest = lstm.encodeForest(
        {&specs[0], &specs[1], &specs[2]}, ag::stackRows(all_rows));
    ASSERT_EQ(forest.size(), 3u);
    for (std::size_t t = 0; t < specs.size(); ++t) {
        auto solo = lstm.encodeNodes(specs[t], inputs[t]);
        ASSERT_EQ(forest[t].size(), solo.size());
        // Tree rows never mix inside a forest batch, so batching
        // across trees must not change any value at all.
        for (std::size_t i = 0; i < solo.size(); ++i)
            EXPECT_FLOAT_EQ(forest[t][i].value().maxAbsDiff(
                                solo[i].value()), 0.0f)
                << "tree " << t << " node " << i;
    }
}

TEST(TreeLstm, ForestStackedEncodingIsInvariantToShardSplits)
{
    // The sharded-serving seam (ROADMAP, ISSUE 4): a shard takes a
    // contiguous range of a forest, so splitting a forest at ANY
    // boundary and concatenating the two stacked encodings must be
    // bitwise-equal to encoding the unsplit forest. Trees never
    // share rows inside a wavefront, so the merged level schedules
    // cannot leak information across the split.
    Rng rng(26);
    nn::TreeLstm lstm(3, 4, 2, nn::TreeArch::Alternating, rng);

    std::vector<nn::TreeSpec> specs;
    specs.push_back(nn::TreeSpec::fromParents({-1, 0, 0, 1, 1}));
    specs.push_back(nn::TreeSpec::fromParents({-1}));
    specs.push_back(nn::TreeSpec::fromParents({-1, 0, 1, 2})); // chain
    specs.push_back(
        nn::TreeSpec::fromParents({-1, 0, 0, 0, 2, 2, 4}));
    std::vector<const nn::TreeSpec*> all;
    for (const nn::TreeSpec& s : specs)
        all.push_back(&s);

    // Per-tree input rows, stacked forest-style.
    std::vector<std::vector<ag::Var>> rows(specs.size());
    for (std::size_t t = 0; t < specs.size(); ++t)
        for (std::size_t i = 0; i < specs[t].size(); ++i)
            rows[t].push_back(ag::constant(patterned(
                1, 3, 0.3f, static_cast<float>(9 * t + i))));

    auto stackRange = [&](std::size_t lo, std::size_t hi) {
        std::vector<ag::Var> flat;
        for (std::size_t t = lo; t < hi; ++t)
            for (const ag::Var& r : rows[t])
                flat.push_back(r);
        return ag::stackRows(flat);
    };

    Tensor full =
        lstm.encodeForestStacked(all, stackRange(0, specs.size()))
            .value();

    for (std::size_t boundary = 1; boundary < specs.size();
         ++boundary) {
        std::vector<const nn::TreeSpec*> left(
            all.begin(), all.begin() + boundary);
        std::vector<const nn::TreeSpec*> right(
            all.begin() + boundary, all.end());
        Tensor leftOut =
            lstm.encodeForestStacked(left, stackRange(0, boundary))
                .value();
        Tensor rightOut =
            lstm.encodeForestStacked(
                    right, stackRange(boundary, specs.size()))
                .value();
        ASSERT_EQ(leftOut.rows() + rightOut.rows(), full.rows())
            << "boundary " << boundary;

        for (int r = 0; r < full.rows(); ++r) {
            const Tensor& part =
                r < leftOut.rows() ? leftOut : rightOut;
            int pr = r < leftOut.rows() ? r : r - leftOut.rows();
            for (int c = 0; c < full.cols(); ++c)
                EXPECT_EQ(part.at(pr, c), full.at(r, c))
                    << "boundary " << boundary << " row " << r
                    << " col " << c;
        }
    }
}

} // namespace
} // namespace ccsa
