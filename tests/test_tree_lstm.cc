/**
 * @file
 * Tests for the sequential LSTM cell, the child-sum tree-LSTM cell,
 * and the three multi-layer tree drivers of Fig. 2.
 */

#include <gtest/gtest.h>

#include "gradcheck.hh"
#include "nn/tree_lstm.hh"

namespace ccsa
{
namespace
{

using testutil::expectGradientsMatch;
using testutil::patterned;

TEST(TreeSpec, FromParentsBuildsOrders)
{
    //      0
    //     / |
    //    1   2
    //   /
    //  3
    nn::TreeSpec spec = nn::TreeSpec::fromParents({-1, 0, 0, 1});
    EXPECT_EQ(spec.root, 0);
    EXPECT_EQ(spec.children[0], (std::vector<int>{1, 2}));
    EXPECT_EQ(spec.children[1], (std::vector<int>{3}));
    ASSERT_EQ(spec.postOrder.size(), 4u);
    // Children precede parents.
    std::vector<int> pos(4);
    for (int i = 0; i < 4; ++i)
        pos[spec.postOrder[i]] = i;
    EXPECT_LT(pos[3], pos[1]);
    EXPECT_LT(pos[1], pos[0]);
    EXPECT_LT(pos[2], pos[0]);
}

TEST(TreeSpec, RejectsForests)
{
    EXPECT_THROW(nn::TreeSpec::fromParents({-1, -1}), FatalError);
    EXPECT_THROW(nn::TreeSpec::fromParents({0, 0}), FatalError);
    EXPECT_THROW(nn::TreeSpec::fromParents({}), FatalError);
    EXPECT_THROW(nn::TreeSpec::fromParents({-1, 5}), FatalError);
}

TEST(LstmCell, StepShapesAndRange)
{
    Rng rng(1);
    nn::LstmCell cell(3, 5, rng);
    ag::Var x = ag::constant(patterned(1, 3, 0.5f));
    auto state = cell.step(x, cell.zeroState());
    EXPECT_EQ(state.h.value().cols(), 5);
    EXPECT_EQ(state.c.value().cols(), 5);
    for (int j = 0; j < 5; ++j) {
        EXPECT_LT(std::fabs(state.h.value().at(0, j)), 1.0f);
    }
}

TEST(LstmCell, SequenceOrderMatters)
{
    Rng rng(2);
    nn::LstmCell cell(2, 4, rng);
    std::vector<ag::Var> ab{ag::constant(patterned(1, 2, 0.9f)),
                            ag::constant(patterned(1, 2, 0.9f, 2.f))};
    std::vector<ag::Var> ba{ab[1], ab[0]};
    Tensor h_ab = cell.runSequence(ab).h.value();
    Tensor h_ba = cell.runSequence(ba).h.value();
    EXPECT_GT(h_ab.maxAbsDiff(h_ba), 1e-5f);
}

TEST(LstmCell, GradientsFlowThroughSequence)
{
    Rng rng(3);
    nn::LstmCell cell(2, 3, rng);
    std::vector<ag::Var> leaves{ag::leaf(patterned(1, 2, 0.6f)),
                                ag::leaf(patterned(1, 2, 0.6f, 1.f))};
    expectGradientsMatch(leaves, [&] {
        auto st = cell.runSequence({leaves[0], leaves[1]});
        return ag::sumAllOp(st.h);
    }, 1e-2f, 3e-2f);
}

TEST(ChildSumCell, LeafComposesFromInputOnly)
{
    Rng rng(4);
    nn::ChildSumTreeLstmCell cell(3, 4, rng);
    ag::Var x = ag::constant(patterned(1, 3, 0.5f));
    auto st = cell.compose(x, {}, {});
    EXPECT_EQ(st.h.value().cols(), 4);
}

TEST(ChildSumCell, ChildOrderInvariance)
{
    // Child-sum aggregation must be permutation invariant (Eq. 4
    // sums child hidden states).
    Rng rng(5);
    nn::ChildSumTreeLstmCell cell(3, 4, rng);
    ag::Var x = ag::constant(patterned(1, 3, 0.5f));
    auto a = cell.compose(x, {}, {});
    ag::Var x2 = ag::constant(patterned(1, 3, 0.5f, 1.0f));
    auto b = cell.compose(x2, {}, {});

    auto ab = cell.compose(x, {a.h, b.h}, {a.c, b.c});
    auto ba = cell.compose(x, {b.h, a.h}, {b.c, a.c});
    EXPECT_LT(ab.h.value().maxAbsDiff(ba.h.value()), 1e-6f);
}

TEST(ChildSumCell, MismatchedChildStatesPanics)
{
    Rng rng(6);
    nn::ChildSumTreeLstmCell cell(2, 3, rng);
    ag::Var x = ag::constant(patterned(1, 2, 0.5f));
    auto st = cell.compose(x, {}, {});
    EXPECT_THROW(cell.compose(x, {st.h}, {}), PanicError);
}

TEST(ChildSumCell, GradientsThroughTree)
{
    Rng rng(7);
    nn::ChildSumTreeLstmCell cell(2, 3, rng);
    std::vector<ag::Var> leaves{ag::leaf(patterned(1, 2, 0.5f)),
                                ag::leaf(patterned(1, 2, 0.5f, 1.f)),
                                ag::leaf(patterned(1, 2, 0.5f, 2.f))};
    expectGradientsMatch(leaves, [&] {
        auto c1 = cell.compose(leaves[0], {}, {});
        auto c2 = cell.compose(leaves[1], {}, {});
        auto root = cell.compose(leaves[2], {c1.h, c2.h},
                                 {c1.c, c2.c});
        return ag::sumAllOp(root.h);
    }, 1e-2f, 3e-2f);
}

class TreeLstmArchTest
    : public ::testing::TestWithParam<std::tuple<nn::TreeArch, int>>
{
};

TEST_P(TreeLstmArchTest, EncodesAndBackpropagates)
{
    auto [arch, layers] = GetParam();
    Rng rng(8);
    nn::TreeLstm lstm(3, 4, layers, arch, rng);

    nn::TreeSpec spec = nn::TreeSpec::fromParents({-1, 0, 0, 1, 1});
    std::vector<ag::Var> inputs;
    for (int i = 0; i < 5; ++i)
        inputs.push_back(
            ag::constant(patterned(1, 3, 0.4f,
                                   static_cast<float>(i))));

    ag::Var root = lstm.encodeRoot(spec, inputs);
    int expected = arch == nn::TreeArch::Bi ? 8 : 4;
    EXPECT_EQ(root.value().cols(), expected);
    EXPECT_EQ(lstm.outputDim(), expected);

    // Backward reaches the parameters.
    ag::backward(ag::sumAllOp(root));
    double grad_norm = 0.0;
    for (auto* p : lstm.parameters())
        grad_norm += p->var.grad().normSq();
    EXPECT_GT(grad_norm, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, TreeLstmArchTest,
    ::testing::Combine(
        ::testing::Values(nn::TreeArch::Uni, nn::TreeArch::Bi,
                          nn::TreeArch::Alternating),
        ::testing::Values(1, 2, 3)));

TEST(TreeLstm, StructureChangesRepresentation)
{
    Rng rng(9);
    nn::TreeLstm lstm(2, 4, 1, nn::TreeArch::Uni, rng);
    std::vector<ag::Var> inputs;
    for (int i = 0; i < 4; ++i)
        inputs.push_back(
            ag::constant(patterned(1, 2, 0.5f,
                                   static_cast<float>(i))));
    // Same inputs, different shapes: chain vs star.
    nn::TreeSpec chain = nn::TreeSpec::fromParents({-1, 0, 1, 2});
    nn::TreeSpec star = nn::TreeSpec::fromParents({-1, 0, 0, 0});
    Tensor h_chain = lstm.encodeRoot(chain, inputs).value();
    Tensor h_star = lstm.encodeRoot(star, inputs).value();
    EXPECT_GT(h_chain.maxAbsDiff(h_star), 1e-5f);
}

TEST(TreeLstm, InputCountMismatchFatal)
{
    Rng rng(10);
    nn::TreeLstm lstm(2, 3, 1, nn::TreeArch::Uni, rng);
    nn::TreeSpec spec = nn::TreeSpec::fromParents({-1, 0});
    EXPECT_THROW(lstm.encodeNodes(spec, {}), FatalError);
}

TEST(TreeLstm, ParameterCountsPerArch)
{
    Rng rng(11);
    // Per cell: 4 gates x (W in x h + U h x h + b h).
    auto cell_params = [](int in, int h) {
        return 4 * (in * h + h * h + h);
    };
    nn::TreeLstm uni(3, 4, 2, nn::TreeArch::Uni, rng);
    EXPECT_EQ(uni.parameterCount(),
              static_cast<std::size_t>(cell_params(3, 4) +
                                       cell_params(4, 4)));
    nn::TreeLstm bi(3, 4, 2, nn::TreeArch::Bi, rng);
    EXPECT_EQ(bi.parameterCount(),
              static_cast<std::size_t>(2 * cell_params(3, 4) +
                                       2 * cell_params(8, 4)));
    // Alternating halves the bi-directional parameter count
    // (paper §IV-C).
    nn::TreeLstm alt(3, 4, 2, nn::TreeArch::Alternating, rng);
    EXPECT_EQ(alt.parameterCount(), uni.parameterCount());
}

TEST(TreeArch, Names)
{
    EXPECT_STREQ(treeArchName(nn::TreeArch::Uni), "uni-directional");
    EXPECT_STREQ(treeArchName(nn::TreeArch::Bi), "bi-directional");
    EXPECT_STREQ(treeArchName(nn::TreeArch::Alternating),
                 "alternating");
}

} // namespace
} // namespace ccsa
