/**
 * @file
 * Tests for the exact t-SNE implementation.
 */

#include <gtest/gtest.h>

#include "viz/tsne.hh"

namespace ccsa
{
namespace
{

TEST(Tsne, OutputShape)
{
    Rng rng(1);
    Tensor x(20, 5);
    x.fillNormal(rng, 0.0f, 1.0f);
    TsneConfig cfg;
    cfg.iterations = 50;
    Tensor y = tsne(x, cfg);
    EXPECT_EQ(y.rows(), 20);
    EXPECT_EQ(y.cols(), 2);
}

TEST(Tsne, TooFewPointsFatal)
{
    Tensor x(2, 3);
    EXPECT_THROW(tsne(x), FatalError);
}

TEST(Tsne, SeparatesDistantClusters)
{
    // Two well-separated Gaussian blobs in 10-D must remain visibly
    // separated in the 2-D embedding.
    Rng rng(2);
    const int per = 25;
    Tensor x(2 * per, 10);
    std::vector<int> labels(2 * per);
    for (int i = 0; i < 2 * per; ++i) {
        bool second = i >= per;
        labels[i] = second ? 1 : 0;
        for (int j = 0; j < 10; ++j)
            x.at(i, j) = static_cast<float>(
                rng.normal(second ? 8.0 : -8.0, 0.5));
    }
    TsneConfig cfg;
    cfg.iterations = 250;
    cfg.perplexity = 10.0;
    Tensor y = tsne(x, cfg);
    EXPECT_GT(separationRatio(y, labels), 2.0);
}

TEST(Tsne, DeterministicForSeed)
{
    Rng rng(3);
    Tensor x(12, 4);
    x.fillNormal(rng, 0.0f, 1.0f);
    TsneConfig cfg;
    cfg.iterations = 60;
    Tensor a = tsne(x, cfg);
    Tensor b = tsne(x, cfg);
    EXPECT_LT(a.maxAbsDiff(b), 1e-6f);
}

TEST(SeparationRatio, KnownConfiguration)
{
    // Two tight clusters at distance 10, intra distance ~0.
    Tensor y(4, 2);
    y.at(0, 0) = 0.0f;
    y.at(1, 0) = 0.1f;
    y.at(2, 0) = 10.0f;
    y.at(3, 0) = 10.1f;
    std::vector<int> labels{0, 0, 1, 1};
    EXPECT_GT(separationRatio(y, labels), 50.0);
}

TEST(SeparationRatio, MismatchedLabelsFatal)
{
    Tensor y(3, 2);
    EXPECT_THROW(separationRatio(y, {0, 1}), FatalError);
}

TEST(SeparationRatio, SingleClassReturnsZero)
{
    Tensor y(3, 2);
    EXPECT_DOUBLE_EQ(separationRatio(y, {0, 0, 0}), 0.0);
}

} // namespace
} // namespace ccsa
