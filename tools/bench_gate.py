"""Shared plumbing for the CI benchmark gates.

Every gate script follows the same shape: load a benchmark JSON
(path from argv[1] or a default), compare measured throughputs
against ratio floors with aligned diagnostic output, and exit
non-zero when any floor is broken. This module holds that
boilerplate once; check_bench_encode.py and check_bench_serve.py
keep only their bench-specific extraction and floor tables.
"""

import json
import sys


def load_json(argv, default_path):
    """Read the benchmark JSON named by argv[1] (or the default)."""
    path = argv[1] if len(argv) > 1 else default_path
    with open(path) as f:
        return json.load(f)


def gate_ratio(label, value, baseline, floor, detail=""):
    """Check value/baseline >= floor, printing one aligned row.

    Returns True when the gate passes. Missing data (None value or a
    non-positive baseline) prints a diagnostic and fails the gate.
    """
    if value is None or baseline is None or baseline <= 0:
        print(f"{label}: missing benchmark data")
        return False
    ratio = value / baseline
    ok = ratio >= floor
    suffix = f"  {detail}" if detail else ""
    print(f"{label}  ratio {ratio:5.2f}x  floor {floor:.4g}x"
          f"{suffix}  {'ok' if ok else 'FAIL'}")
    return ok


def finish(all_ok):
    """Exit code for main(): 0 when every gate passed."""
    return 0 if all_ok else 1
