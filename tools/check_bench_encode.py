#!/usr/bin/env python3
"""Gate the level-batched encode benchmark.

Reads the google-benchmark JSON written by

    micro_ops --benchmark_filter='BM_EncodeLevelBatchedVsPerNode|BM_MatmulKernel' \
              --benchmark_out=BENCH_encode.json --benchmark_out_format=json

and fails (exit 1) when the level-batched path loses its edge over the
per-node oracle: a kernel or scheduling regression shows up here as a
collapsed ratio. Floors are deliberately below the typically observed
ratios (~3.8x bushy, ~3x ast, ~1.0x chain) so CI noise does not flap,
while real regressions — e.g. the batched path degenerating to
per-node cost — still fail loudly.
"""

import statistics
import sys

import bench_gate


FLOORS = {
    # shape -> minimum batched/per-node throughput ratio. The chain
    # floor guards against gross regressions only: chains dispatch to
    # the per-node path (true ratio ~1.0), so on a contended runner
    # the two measurements are the same code path plus noise.
    "bushy": 2.0,
    "ast": 1.5,
    "chain": 0.7,
}


def main() -> int:
    data = bench_gate.load_json(sys.argv, "BENCH_encode.json")

    samples = {}
    for bench in data.get("benchmarks", []):
        if not bench.get("name", "").startswith(
                "BM_EncodeLevelBatchedVsPerNode"):
            continue
        # With --benchmark_repetitions the JSON carries per-repetition
        # entries plus mean/median/stddev aggregates; keep the raw
        # repetitions (run_type absent on old benchmark versions).
        if bench.get("run_type", "iteration") != "iteration":
            continue
        label = bench.get("label", "")
        if "/" not in label:
            continue
        shape, mode = label.split("/", 1)
        samples.setdefault((shape, mode), []).append(
            bench["items_per_second"])

    # Median across repetitions shrugs off one noisy measurement.
    perf = {key: statistics.median(vals)
            for key, vals in samples.items()}

    ok = True
    for shape, floor in FLOORS.items():
        batched = perf.get((shape, "level-batched"))
        pernode = perf.get((shape, "per-node"))
        detail = ""
        if batched is not None and pernode is not None:
            detail = (f"level-batched {batched:12.0f} nodes/s  "
                      f"per-node {pernode:12.0f} nodes/s")
        ok &= bench_gate.gate_ratio(f"{shape:6s}", batched, pernode,
                                    floor, detail)

    return bench_gate.finish(ok)


if __name__ == "__main__":
    sys.exit(main())
