#!/usr/bin/env python3
"""Gate the encode, matmul-dispatch, and latent-store benchmarks.

Reads the google-benchmark JSON written by

    micro_ops --benchmark_filter='BM_EncodeLevelBatchedVsPerNode|BM_EncodeNoGradVsTaped|BM_MatmulKernel|BM_MatmulDispatch|BM_CacheHitByPrecision|BM_F16DecodeDispatch' \
              --benchmark_out=BENCH_encode.json --benchmark_out_format=json

and fails (exit 1) when:

 - the level-batched encode path loses its edge over the per-node
   oracle (a kernel or scheduling regression shows up here as a
   collapsed ratio);
 - the vectorized matmul kernel family drops below 1.5x the scalar
   fallback at the largest benched size — skipped (with a note) when
   the JSON carries no non-scalar dispatch row, i.e. the runner has
   no AVX2+FMA;
 - a quantized cache hit path (lookup + dequantize) collapses
   relative to fp32 hits. The floors there are loose: dequantize IS
   slower than memcpy, the gate only catches pathological
   regressions like decoding falling off a fast path entirely;
 - the tape-free (InferenceScope) encode loses its edge over the
   taped forward on the realistic-AST shape — the acceptance bar is
   1.3x, with loose never-slower floors on the other shapes;
 - the F16C fp16 decode family drops below 2x the portable
   bit-twiddling oracle — skipped (with a note) when the JSON has no
   f16c row, i.e. the runner has no F16C.

Floors are deliberately below the typically observed ratios
(~3.8x bushy, ~3x ast, ~1.0x chain; ~2-4x avx2-fma) so CI noise does
not flap, while real regressions still fail loudly.
"""

import statistics
import sys

import bench_gate


FLOORS = {
    # shape -> minimum batched/per-node throughput ratio. The chain
    # floor guards against gross regressions only: chains dispatch to
    # the per-node path (true ratio ~1.0), so on a contended runner
    # the two measurements are the same code path plus noise.
    "bushy": 2.0,
    "ast": 1.5,
    "chain": 0.7,
}


# Vectorized-vs-scalar dispatch floor at the largest benched size
# (the acceptance bar is 1.5x; typical observed is well above).
DISPATCH_FLOOR = 1.5

# Quantized hit path vs fp32 hit path. Dequantize is real work, so
# these only catch a collapse (e.g. per-hit allocation regressions).
CACHE_HIT_FLOORS = {
    "fp16": 0.10,
    "int8": 0.10,
}

# No-grad (InferenceScope) vs taped encode throughput. The ast floor
# is the PR's acceptance bar; chain/bushy floors only assert the
# tape-free path is never meaningfully slower (observed ~3.5x chain,
# ~1.2x bushy, ~1.5x ast — tape overhead scales with ops per node,
# which level batching amortises on wide trees).
NOGRAD_FLOORS = {
    "ast": 1.3,
    "bushy": 0.9,
    "chain": 0.9,
}

# F16C decode vs portable bit-twiddling (observed ~19x; the bar is
# the "fp16 hits stop being 3x slower than fp32" acceptance line).
F16C_FLOOR = 2.0


def collect(data, name, split_label=False):
    """label -> median items/s over raw repetitions of one bench."""
    samples = {}
    for bench in data.get("benchmarks", []):
        bench_name = bench.get("name", "")
        if not (bench_name == name or
                bench_name.startswith(name + "/")):
            continue
        # With --benchmark_repetitions the JSON carries per-repetition
        # entries plus mean/median/stddev aggregates; keep the raw
        # repetitions (run_type absent on old benchmark versions).
        if bench.get("run_type", "iteration") != "iteration":
            continue
        # Rows skipped at runtime (e.g. the f16c row on a CPU without
        # F16C) carry an error and no throughput.
        if "items_per_second" not in bench:
            continue
        label = bench.get("label", "")
        if split_label and "/" not in label:
            continue
        key = tuple(label.split("/", 1)) if split_label else label
        samples.setdefault(key, []).append(bench["items_per_second"])
    # Median across repetitions shrugs off one noisy measurement.
    return {key: statistics.median(vals)
            for key, vals in samples.items()}


def dispatch_samples(data):
    """(kernel_name, size) -> median items/s for BM_MatmulDispatch."""
    samples = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if not name.startswith("BM_MatmulDispatch/"):
            continue
        if bench.get("run_type", "iteration") != "iteration":
            continue
        label = bench.get("label", "")
        if not label.startswith("dispatch:"):
            continue
        size = int(name.split("/")[-1])
        kernel = label[len("dispatch:"):]
        samples.setdefault((kernel, size), []).append(
            bench["items_per_second"])
    return {key: statistics.median(vals)
            for key, vals in samples.items()}


def main() -> int:
    data = bench_gate.load_json(sys.argv, "BENCH_encode.json")
    ok = True

    perf = collect(data, "BM_EncodeLevelBatchedVsPerNode",
                   split_label=True)
    for shape, floor in FLOORS.items():
        batched = perf.get((shape, "level-batched"))
        pernode = perf.get((shape, "per-node"))
        detail = ""
        if batched is not None and pernode is not None:
            detail = (f"level-batched {batched:12.0f} nodes/s  "
                      f"per-node {pernode:12.0f} nodes/s")
        ok &= bench_gate.gate_ratio(f"{shape:6s}", batched, pernode,
                                    floor, detail)

    dispatch = dispatch_samples(data)
    simd_rows = {key: v for key, v in dispatch.items()
                 if key[0] != "scalar"}
    if simd_rows:
        size = max(s for _, s in simd_rows)
        kernel = next(k for k, s in simd_rows if s == size)
        ok &= bench_gate.gate_ratio(
            f"{kernel} n={size}", dispatch.get((kernel, size)),
            dispatch.get(("scalar", size)), DISPATCH_FLOOR)
    elif dispatch:
        # Scalar-only hardware (or a forced-scalar leg): nothing to
        # compare, and failing would punish the runner, not the code.
        print("matmul dispatch: no vectorized rows, gate skipped")

    nograd = collect(data, "BM_EncodeNoGradVsTaped",
                     split_label=True)
    for shape, floor in NOGRAD_FLOORS.items():
        free = nograd.get((shape, "nograd"))
        taped = nograd.get((shape, "taped"))
        detail = ""
        if free is not None and taped is not None:
            detail = (f"nograd {free:12.0f} nodes/s  "
                      f"taped {taped:12.0f} nodes/s")
        ok &= bench_gate.gate_ratio(f"nograd {shape:6s}", free,
                                    taped, floor, detail)

    f16 = collect(data, "BM_F16DecodeDispatch")
    if f16.get("f16:f16c") is not None:
        ok &= bench_gate.gate_ratio("f16c decode", f16.get("f16:f16c"),
                                    f16.get("f16:portable"),
                                    F16C_FLOOR)
    elif f16:
        # No F16C on this runner: the hardware row was skipped, and
        # the portable row alone has nothing to gate against.
        print("f16 dispatch: no f16c row, gate skipped")

    hits = collect(data, "BM_CacheHitByPrecision")
    fp32 = hits.get("cache-hit:fp32")
    if hits:
        for prec, floor in CACHE_HIT_FLOORS.items():
            ok &= bench_gate.gate_ratio(
                f"cache-hit {prec}", hits.get(f"cache-hit:{prec}"),
                fp32, floor)

    return bench_gate.finish(ok)


if __name__ == "__main__":
    sys.exit(main())
