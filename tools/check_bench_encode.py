#!/usr/bin/env python3
"""Gate the level-batched encode benchmark.

Reads the google-benchmark JSON written by

    micro_ops --benchmark_filter='BM_EncodeLevelBatchedVsPerNode|BM_MatmulKernel' \
              --benchmark_out=BENCH_encode.json --benchmark_out_format=json

and fails (exit 1) when the level-batched path loses its edge over the
per-node oracle: a kernel or scheduling regression shows up here as a
collapsed ratio. Floors are deliberately below the typically observed
ratios (~3.8x bushy, ~3x ast, ~1.0x chain) so CI noise does not flap,
while real regressions — e.g. the batched path degenerating to
per-node cost — still fail loudly.
"""

import json
import statistics
import sys


FLOORS = {
    # shape -> minimum batched/per-node throughput ratio. The chain
    # floor guards against gross regressions only: chains dispatch to
    # the per-node path (true ratio ~1.0), so on a contended runner
    # the two measurements are the same code path plus noise.
    "bushy": 2.0,
    "ast": 1.5,
    "chain": 0.7,
}


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_encode.json"
    with open(path) as f:
        data = json.load(f)

    samples = {}
    for bench in data.get("benchmarks", []):
        if not bench.get("name", "").startswith(
                "BM_EncodeLevelBatchedVsPerNode"):
            continue
        # With --benchmark_repetitions the JSON carries per-repetition
        # entries plus mean/median/stddev aggregates; keep the raw
        # repetitions (run_type absent on old benchmark versions).
        if bench.get("run_type", "iteration") != "iteration":
            continue
        label = bench.get("label", "")
        if "/" not in label:
            continue
        shape, mode = label.split("/", 1)
        samples.setdefault((shape, mode), []).append(
            bench["items_per_second"])

    # Median across repetitions shrugs off one noisy measurement.
    perf = {key: statistics.median(vals)
            for key, vals in samples.items()}

    failed = False
    for shape, floor in FLOORS.items():
        batched = perf.get((shape, "level-batched"))
        pernode = perf.get((shape, "per-node"))
        if batched is None or pernode is None:
            print(f"{shape:6s} missing benchmark results")
            failed = True
            continue
        ratio = batched / pernode
        ok = ratio >= floor
        print(f"{shape:6s} level-batched {batched:12.0f} nodes/s  "
              f"per-node {pernode:12.0f} nodes/s  "
              f"ratio {ratio:5.2f}x  floor {floor}x  "
              f"{'ok' if ok else 'FAIL'}")
        failed |= not ok

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
