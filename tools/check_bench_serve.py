#!/usr/bin/env python3
"""Gate the serving-throughput benchmark.

Reads the JSON written by

    serve_throughput --json BENCH_serve.json

and fails (exit 1) on either of two regressions:

1. ShardedServer losing its edge over the single-batcher AsyncServer
   under interactive (depth-1 closed-loop) clients. The acceptance
   bar from ISSUE 4 is sharded >= 1.5x the single-batcher aggregate
   pairs/sec at 4 shards; the win there is mostly structural (a
   4-way partitioned cache holds 4x the latents at the same
   per-shard budget, so the deterministic re-encode count
   collapses), which is why a throughput ratio makes a workable CI
   gate: a regression in the cache partitioning, the split/join
   path, or the worker loop shows up as the encode storm returning,
   not as scheduler noise. A 1-shard sanity floor guards against
   ShardedServer simply being slower plumbing than AsyncServer.

2. ModelRegistry overhead (ISSUE 5): the same single-model batched
   workload through a registry-backed Engine must stay >= 0.95x the
   direct Engine — per-batch name resolution is one mutex-protected
   map probe amortised over a whole batch, so a lower ratio means
   the resolution (or the namespaced cache keys) leaked real work
   into the hot path.

3. Noisy-neighbor isolation (ISSUE 6): the interactive tenant's p99
   latency with a quota-capped bulk flood running must stay <= 3x
   its flood-free p99. The token bucket sheds the flood at submit
   time and the two-lane batcher flushes the interactive lane on its
   own deadline, so a broken quota or a batch lane leaking into the
   interactive flush shows up here as a p99 blow-up.

4. Metrics-plane overhead (ISSUE 7): the same interactive workload
   through a fully instrumented AsyncServer (MetricsRegistry +
   per-request latency histograms + SLO tracking + a background
   sampler) must stay >= 0.97x the bare server. Recording is relaxed
   atomic adds outside the server's stats mutex, so a lower ratio
   means metrics work leaked into a serial section (e.g. a registry
   map lookup per request instead of a cached instrument ref).

5. Process-isolation overhead (ISSUE 8): the same interactive
   workload on ProcessShardedServer (4 crash-isolated worker
   processes) must stay >= 0.45x the in-process ShardedServer at 4
   shards. The tax is tree serialization plus a pipelined socketpair
   round trip per batch; the steady state sits near 0.55x with
   ~±10% run-to-run noise, and the floor is set below that band
   because the regression this gate exists to catch — per-PAIR work
   creeping into the per-BATCH wire path (e.g. trees serialized once
   per pair instead of deduped once per batch) — lands at 0.2x or
   worse, far below any noise. The bench provisions
   each worker's private cache pool-resident so this row measures
   the wire tax and not cache geometry: worker processes cannot
   share a digest-partitioned cache across address spaces, and
   digest routing shows every worker the whole tree pool.
"""

import sys

import bench_gate


# shard count -> minimum sharded/single-batcher throughput ratio.
# 4 shards is the ISSUE-4 acceptance bar; 1 shard is a plumbing
# sanity check (same cache budget as the baseline, so parity minus
# noise is expected — the floor only catches gross regressions).
SHARD_FLOORS = {
    1: 0.6,
    4: 1.5,
}

# Registry-through-single-model vs direct Engine (ISSUE 5).
REGISTRY_FLOOR = 0.95

# Interactive-tenant p99 under flood may be at most 3x the solo p99
# (ISSUE 6). Gated as solo/flood >= 1/3 so the shared ratio-floor
# helper applies unchanged.
NOISY_NEIGHBOR_FLOOR = 1.0 / 3.0

# Instrumented vs bare AsyncServer throughput (ISSUE 7).
METRICS_FLOOR = 0.97

# ProcessShardedServer vs in-process ShardedServer at the same shard
# count (ISSUE 8): the price of crash isolation, bounded. Set below
# the observed ~0.55x +/- noise band; the per-pair-wire-work
# regression this guards against lands at <= 0.2x.
IPC_FLOOR = 0.45
IPC_SHARDS = 4


def main() -> int:
    data = bench_gate.load_json(sys.argv, "BENCH_serve.json")

    baseline = None
    sharded = {}
    direct = None
    registry = None
    tenant_solo = None
    tenant_flood = None
    metrics_off = None
    metrics_on = None
    ipc = None
    for row in data.get("rows", []):
        if row.get("mode") == "async_closed":
            baseline = row
        elif row.get("mode") == "sharded":
            sharded[int(row.get("shards", 0))] = row
        elif (row.get("mode") == "ipc"
              and int(row.get("shards", 0)) == IPC_SHARDS):
            ipc = row
        elif row.get("mode") == "engine_direct":
            direct = row
        elif row.get("mode") == "engine_registry":
            registry = row
        elif row.get("mode") == "tenant_solo":
            tenant_solo = row
        elif row.get("mode") == "tenant_flood":
            tenant_flood = row
        elif row.get("mode") == "metrics_off":
            metrics_off = row
        elif row.get("mode") == "metrics_on":
            metrics_on = row

    if baseline is None or baseline.get("pairs_per_sec", 0) <= 0:
        print("missing async_closed baseline row")
        return 1

    base_rate = baseline["pairs_per_sec"]
    print(f"single-batcher baseline {base_rate:10.0f} pairs/s  "
          f"({baseline.get('trees_encoded', '?')} trees encoded)")

    ok = True
    for shards, floor in sorted(SHARD_FLOORS.items()):
        row = sharded.get(shards)
        rate = row["pairs_per_sec"] if row else None
        detail = (f"{rate:10.0f} pairs/s  "
                  f"({row.get('trees_encoded', '?')} trees encoded)"
                  if row else "")
        ok &= bench_gate.gate_ratio(f"{shards} shards", rate,
                                    base_rate, floor, detail)

    direct_rate = direct["pairs_per_sec"] if direct else None
    registry_rate = registry["pairs_per_sec"] if registry else None
    detail = (f"registry {registry_rate:10.0f} vs direct "
              f"{direct_rate:10.0f} pairs/s"
              if direct and registry else "")
    ok &= bench_gate.gate_ratio("registry overhead", registry_rate,
                                direct_rate, REGISTRY_FLOOR, detail)

    solo_p99 = tenant_solo["p99_ms"] if tenant_solo else None
    flood_p99 = tenant_flood["p99_ms"] if tenant_flood else None
    detail = (f"solo p99 {solo_p99:6.2f} ms vs flood p99 "
              f"{flood_p99:6.2f} ms"
              if tenant_solo and tenant_flood else "")
    # solo/flood >= 1/3  <=>  flood p99 <= 3x solo p99.
    ok &= bench_gate.gate_ratio("noisy neighbor p99", solo_p99,
                                flood_p99, NOISY_NEIGHBOR_FLOOR,
                                detail)

    off_rate = metrics_off["pairs_per_sec"] if metrics_off else None
    on_rate = metrics_on["pairs_per_sec"] if metrics_on else None
    detail = (f"on {on_rate:10.0f} vs off {off_rate:10.0f} pairs/s"
              if metrics_off and metrics_on else "")
    ok &= bench_gate.gate_ratio("metrics overhead", on_rate,
                                off_rate, METRICS_FLOOR, detail)

    sharded_ref = sharded.get(IPC_SHARDS)
    ref_rate = sharded_ref["pairs_per_sec"] if sharded_ref else None
    ipc_rate = ipc["pairs_per_sec"] if ipc else None
    detail = (f"ipc {ipc_rate:10.0f} vs sharded-{IPC_SHARDS} "
              f"{ref_rate:10.0f} pairs/s"
              if ipc and sharded_ref else "")
    ok &= bench_gate.gate_ratio("process isolation", ipc_rate,
                                ref_rate, IPC_FLOOR, detail)

    return bench_gate.finish(ok)


if __name__ == "__main__":
    sys.exit(main())
