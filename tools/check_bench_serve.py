#!/usr/bin/env python3
"""Gate the sharded-serving throughput benchmark.

Reads the JSON written by

    serve_throughput --json BENCH_serve.json

and fails (exit 1) when ShardedServer loses its edge over the
single-batcher AsyncServer under interactive (depth-1 closed-loop)
clients. The acceptance bar from ISSUE 4 is sharded >= 1.5x the
single-batcher aggregate pairs/sec at 4 shards; the win there is
mostly structural (a 4-way partitioned cache holds 4x the latents at
the same per-shard budget, so the deterministic re-encode count
collapses), which is why a throughput ratio makes a workable CI gate:
a regression in the cache partitioning, the split/join path, or the
worker loop shows up as the encode storm returning, not as scheduler
noise. A 1-shard sanity floor guards against ShardedServer simply
being slower plumbing than AsyncServer.
"""

import json
import sys


# shard count -> minimum sharded/single-batcher throughput ratio.
# 4 shards is the ISSUE-4 acceptance bar; 1 shard is a plumbing
# sanity check (same cache budget as the baseline, so parity minus
# noise is expected — the floor only catches gross regressions).
FLOORS = {
    1: 0.6,
    4: 1.5,
}


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_serve.json"
    with open(path) as f:
        data = json.load(f)

    baseline = None
    sharded = {}
    for row in data.get("rows", []):
        if row.get("mode") == "async_closed":
            baseline = row
        elif row.get("mode") == "sharded":
            sharded[int(row.get("shards", 0))] = row

    if baseline is None or baseline.get("pairs_per_sec", 0) <= 0:
        print("missing async_closed baseline row")
        return 1

    base_rate = baseline["pairs_per_sec"]
    print(f"single-batcher baseline {base_rate:10.0f} pairs/s  "
          f"({baseline.get('trees_encoded', '?')} trees encoded)")

    failed = False
    for shards, floor in sorted(FLOORS.items()):
        row = sharded.get(shards)
        if row is None:
            print(f"{shards} shards: missing benchmark row")
            failed = True
            continue
        ratio = row["pairs_per_sec"] / base_rate
        ok = ratio >= floor
        print(f"{shards} shards {row['pairs_per_sec']:10.0f} pairs/s  "
              f"ratio {ratio:5.2f}x  floor {floor}x  "
              f"({row.get('trees_encoded', '?')} trees encoded)  "
              f"{'ok' if ok else 'FAIL'}")
        failed |= not ok

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
