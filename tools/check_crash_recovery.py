#!/usr/bin/env python3
"""CI gate for crash-isolated serving (ISSUE 8).

Drives the serving daemon's --ipc mode with a mid-run worker crash

    serving_daemon --ipc --fault-inject crash:5 --metrics-out X

and validates, from the OUTSIDE, the robustness contract of
ProcessShardedServer:

1. The daemon exits 0 within the timeout. The daemon itself exits
   non-zero if any accepted request's future failed to resolve or if
   the conservation identity broke, and a supervision bug that
   strands a future shows up here as a timeout, not a flake.
2. The injected crash actually happened and was recovered:
   sum(ccsa_worker_restarts_total) >= 1 and every ccsa_worker_up
   gauge is 1 at scrape time (the respawned worker rejoined).
3. Request conservation in the exported metrics:
   submitted == completed + failed + deadline for server="ipc"
   (rejected_* are refused at the door and not counted submitted).
4. No shard was degraded: one clean crash must cost at most one
   in-flight batch, never trip the circuit breaker
   (ccsa_shard_degraded == 0 everywhere).

Usage: check_crash_recovery.py [path/to/serving_daemon]
"""

import re
import subprocess
import sys
import tempfile

FAULT = "crash:5"
TIMEOUT_SEC = 120


def fail(msg: str) -> int:
    print(f"check_crash_recovery: FAIL: {msg}")
    return 1


def parse_metrics(path: str):
    """name -> {frozen label string -> float} for ccsa_* samples."""
    series = {}
    line_re = re.compile(r"^(\w+)\{([^}]*)\}\s+(\S+)$")
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            m = line_re.match(line)
            if m is None:
                continue
            name, labels, value = m.groups()
            series.setdefault(name, {})[labels] = float(value)
    return series


def main() -> int:
    daemon = sys.argv[1] if len(sys.argv) > 1 else "./serving_daemon"
    metrics_path = tempfile.mktemp(suffix=".prom")

    cmd = [daemon, "--ipc", "--fault-inject", FAULT,
           "--metrics-out", metrics_path]
    print(f"running: {' '.join(cmd)}")
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=TIMEOUT_SEC)
    except subprocess.TimeoutExpired:
        return fail(f"daemon did not finish in {TIMEOUT_SEC}s "
                    "(stranded future or hung supervisor)")
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        return fail(f"daemon exited {proc.returncode} "
                    "(leaked futures or broken conservation)")
    if "conservation:" not in proc.stdout or \
            "-> OK" not in proc.stdout:
        return fail("daemon did not report conservation OK")

    series = parse_metrics(metrics_path)

    restarts = series.get("ccsa_worker_restarts_total", {})
    if not restarts:
        return fail("no ccsa_worker_restarts_total series")
    total_restarts = sum(restarts.values())
    if total_restarts < 1:
        return fail(f"injected {FAULT} but restarts == "
                    f"{total_restarts} (fault not exercised?)")

    up = series.get("ccsa_worker_up", {})
    if not up:
        return fail("no ccsa_worker_up series")
    down = [labels for labels, v in up.items() if v != 1.0]
    if down:
        return fail(f"workers not back up at scrape time: {down}")

    degraded = series.get("ccsa_shard_degraded", {})
    tripped = [labels for labels, v in degraded.items() if v != 0.0]
    if tripped:
        return fail(f"one crash must not open the breaker: {tripped}")

    requests = {}
    for labels, v in series.get("ccsa_requests_total", {}).items():
        if 'server="ipc"' not in labels:
            continue
        m = re.search(r'outcome="(\w+)"', labels)
        if m:
            requests[m.group(1)] = v
    for outcome in ("submitted", "completed", "failed", "deadline"):
        if outcome not in requests:
            return fail(f"missing ccsa_requests_total outcome "
                        f"'{outcome}' for server=ipc")
    accounted = (requests["completed"] + requests["failed"] +
                 requests["deadline"])
    if requests["submitted"] != accounted:
        return fail(f"conservation violated in metrics: "
                    f"submitted={requests['submitted']} != "
                    f"completed+failed+deadline={accounted}")
    if requests["submitted"] <= 0:
        return fail("no requests submitted")

    print(f"check_crash_recovery: ok: {int(total_restarts)} worker "
          f"restart(s), {int(requests['submitted'])} requests all "
          f"accounted for "
          f"({int(requests['completed'])} completed, "
          f"{int(requests['failed'])} failed, "
          f"{int(requests['deadline'])} deadline), no shard "
          "degraded")
    return 0


if __name__ == "__main__":
    sys.exit(main())
