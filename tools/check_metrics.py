#!/usr/bin/env python3
"""Validate MetricsRegistry Prometheus-text exposition dumps.

Reads one or two exposition files written by MetricsRegistry::expose
(serving_daemon --metrics-out). With two files they must be scrapes
of the SAME registry in chronological order (older first). Fails
(exit 1) unless:

1. every non-comment line parses as `name{labels} value` with a
   valid metric name, balanced quoted labels, and a finite value;

2. every sample is preceded by `# TYPE` for its family (histogram
   samples fall under the base family name; `<fam>_window` summaries
   carry their own TYPE line), and no family has two TYPE lines;

3. label blocks are canonical: keys sorted, no duplicate keys
   (the registry renders sorted labels; `le`/`quantile` are
   renderer-appended and exempt from the sort check);

4. lifetime histogram `_bucket` series are cumulative in `le`,
   ending with `+Inf` equal to the family `_count`;

5. required families from the serving spine are present (the daemon
   exercises every layer, so a missing family means wiring broke);

6. across two scrapes, counters and lifetime histogram buckets are
   monotone non-decreasing — windowed `_window` summaries are
   exempt by design (samples age out of the window).

Usage: check_metrics.py metrics.prom [later_metrics.prom]
"""

import math
import re
import sys

REQUIRED_FAMILIES = [
    "ccsa_requests_total",
    "ccsa_request_latency_us",
    "ccsa_engine_phase_us",
    "ccsa_queue_depth",
    "ccsa_cache_residents",
    "ccsa_cache_resident_bytes",
    "ccsa_slo_burn_rate",
    "ccsa_trace_spans_dropped_total",
]

VALID_TYPES = {"counter", "gauge", "histogram", "summary"}
NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def fail(msg: str) -> int:
    print(f"check_metrics: FAIL: {msg}")
    return 1


def base_family(name: str) -> str:
    """Map a sample name to the family its TYPE line declares."""
    if name.endswith("_window") or "_window_" in name:
        # <fam>_window{quantile=...}, <fam>_window_sum/_count belong
        # to the summary family <fam>_window.
        return name.split("_window")[0] + "_window"
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse(path: str):
    """Parse an exposition file.

    Returns (samples, types) where samples maps
    (name, rendered-labels) -> float and types maps family -> type,
    or a string error message.
    """
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        return f"cannot read {path}: {e}"

    samples = {}
    types = {}
    for i, line in enumerate(lines, 1):
        where = f"{path}:{i}"
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in VALID_TYPES:
                return f"{where}: malformed TYPE line: {line!r}"
            fam = parts[2]
            if fam in types:
                return f"{where}: duplicate TYPE for {fam}"
            types[fam] = parts[3]
            continue
        if line.startswith("#"):
            continue

        m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
                     r"(\{.*\})?\s+(\S+)$", line)
        if not m:
            return f"{where}: unparseable sample line: {line!r}"
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            fval = float(value)
        except ValueError:
            return f"{where}: bad value {value!r}"
        if not math.isfinite(fval):
            return f"{where}: non-finite value {value!r}"

        if labels:
            inner = labels[1:-1]
            pairs = LABEL_RE.findall(inner)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in pairs)
            if rebuilt != inner:
                return f"{where}: malformed label block: {labels!r}"
            keys = [k for k, _ in pairs]
            if len(keys) != len(set(keys)):
                return f"{where}: duplicate label keys: {labels!r}"
            base = [k for k in keys if k not in ("le", "quantile")]
            if base != sorted(base):
                return f"{where}: labels not sorted: {labels!r}"

        fam = base_family(name)
        if fam not in types:
            return f"{where}: sample {name!r} has no preceding " \
                   f"# TYPE {fam}"
        key = (name, labels)
        if key in samples:
            return f"{where}: duplicate series {name}{labels}"
        samples[key] = fval
    if not samples:
        return f"{path}: no samples"
    return samples, types


def le_value(labels: str) -> float:
    m = re.search(r'le="([^"]*)"', labels)
    bound = m.group(1)
    return math.inf if bound == "+Inf" else float(bound)


def strip_label(labels: str, key: str) -> str:
    """Drop one key from a rendered label block (series grouping)."""
    inner = labels[1:-1] if labels else ""
    kept = [p for p in LABEL_RE.findall(inner) if p[0] != key]
    if not kept:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in kept) + "}"


def check_histograms(samples, types) -> str:
    """Cumulative buckets, +Inf == _count, per labeled series."""
    series = {}
    for (name, labels), value in samples.items():
        if not name.endswith("_bucket"):
            continue
        fam = name[: -len("_bucket")]
        if types.get(fam) != "histogram":
            return f"{name}{labels}: _bucket outside a histogram"
        series.setdefault((fam, strip_label(labels, "le")),
                          []).append((le_value(labels), value))
    for (fam, labels), buckets in series.items():
        buckets.sort()
        prev = 0.0
        for le, cum in buckets:
            if cum < prev:
                return (f"{fam}{labels}: bucket le={le} count {cum}"
                        f" < previous {prev} (not cumulative)")
            prev = cum
        if buckets[-1][0] != math.inf:
            return f"{fam}{labels}: missing le=+Inf bucket"
        count = samples.get((fam + "_count", labels))
        if count is None:
            return f"{fam}{labels}: histogram without _count"
        if buckets[-1][1] != count:
            return (f"{fam}{labels}: +Inf bucket {buckets[-1][1]} "
                    f"!= _count {count}")
    return ""


def monotone_exempt(name: str, types) -> bool:
    """Series allowed to decrease between scrapes."""
    fam = base_family(name)
    kind = types.get(fam, "")
    return kind in ("gauge", "summary")


def main() -> int:
    if len(sys.argv) not in (2, 3):
        print(__doc__)
        return 2

    parsed = []
    for path in sys.argv[1:]:
        result = parse(path)
        if isinstance(result, str):
            return fail(result)
        parsed.append(result)

    for path, (samples, types) in zip(sys.argv[1:], parsed):
        for fam in REQUIRED_FAMILIES:
            if fam not in types:
                return fail(f"{path}: required family {fam} missing")
        err = check_histograms(samples, types)
        if err:
            return fail(f"{path}: {err}")

    if len(parsed) == 2:
        (old, old_types), (new, _) = parsed
        for key, value in old.items():
            name, labels = key
            if monotone_exempt(name, old_types):
                continue
            later = new.get(key)
            if later is None:
                return fail(f"series {name}{labels} present in "
                            f"{sys.argv[1]} but gone in "
                            f"{sys.argv[2]}")
            if later < value:
                return fail(f"series {name}{labels} went backwards "
                            f"across scrapes: {value} -> {later}")

    n = len(parsed[0][0])
    fams = len(parsed[0][1])
    mode = "two scrapes" if len(parsed) == 2 else "one scrape"
    print(f"check_metrics: ok: {n} series across {fams} families "
          f"({mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
