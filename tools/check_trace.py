#!/usr/bin/env python3
"""Validate a TraceRecorder chrome-trace export.

Reads the JSON written by TraceRecorder::writeJson (the chrome trace
event format serving_daemon --trace exports) and fails (exit 1)
unless:

1. the file parses and holds a non-empty "traceEvents" list of "X"
   complete events with non-negative integer ts/dur and the expected
   args (req chain id, tenant, pairs);

2. every chain (args.req) is COMPLETE: exactly one span per pipeline
   phase, admission -> queue -> coalesce -> encode -> score. Servers
   only record a chain at fan-out time, after its batch succeeded,
   precisely so exports never contain partial chains — a missing or
   duplicated phase means that invariant broke;

3. chain timestamps are monotone and non-overlapping: each phase
   starts no earlier than the previous phase ended (the five spans
   tile the request's lifetime, sharing boundary timestamps);

4. spans of one chain agree on tenant and pair count (they describe
   one request).

Usage: check_trace.py [trace.json]
"""

import collections
import json
import sys

PHASES = ["admission", "queue", "coalesce", "encode", "score"]


def fail(msg: str) -> int:
    print(f"check_trace: FAIL: {msg}")
    return 1


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "trace.json"
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot parse {path}: {e}")

    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail("no traceEvents in export")

    chains = collections.defaultdict(list)
    for i, ev in enumerate(events):
        if ev.get("ph") != "X":
            return fail(f"event {i}: expected complete event "
                        f"ph=X, got {ev.get('ph')!r}")
        if ev.get("name") not in PHASES:
            return fail(f"event {i}: unknown phase "
                        f"{ev.get('name')!r}")
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, int) or v < 0:
                return fail(f"event {i}: bad {key}: {v!r}")
        args = ev.get("args")
        if (not isinstance(args, dict) or "req" not in args
                or "tenant" not in args or "pairs" not in args):
            return fail(f"event {i}: missing args.req/tenant/pairs")
        chains[args["req"]].append(ev)

    for req, spans in sorted(chains.items()):
        names = [s["name"] for s in spans]
        if sorted(names) != sorted(PHASES):
            return fail(f"chain {req}: incomplete or duplicated "
                        f"phases: {names}")
        by_phase = {s["name"]: s for s in spans}
        ordered = [by_phase[p] for p in PHASES]
        for prev, cur in zip(ordered, ordered[1:]):
            if cur["ts"] < prev["ts"] + prev["dur"]:
                return fail(
                    f"chain {req}: {cur['name']} starts at "
                    f"{cur['ts']}us, before {prev['name']} ends at "
                    f"{prev['ts'] + prev['dur']}us")
        tenants = {s["args"]["tenant"] for s in spans}
        pairs = {s["args"]["pairs"] for s in spans}
        if len(tenants) != 1 or len(pairs) != 1:
            return fail(f"chain {req}: inconsistent tenant/pairs "
                        f"across spans: {tenants} / {pairs}")

    n_tenants = len({s["args"]["tenant"]
                     for spans in chains.values() for s in spans})
    print(f"check_trace: ok: {len(events)} spans, "
          f"{len(chains)} complete chains, {n_tenants} tenant(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
